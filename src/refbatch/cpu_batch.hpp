// Baseline: CPU batched LU in the style of MKL's getrf_batch, executed
// under a CPU device model (dual-socket Xeon 6140 by default) — the paper's
// CPU reference line in Figure 10. One "kernel" launch; one matrix per
// core-slot; the list scheduler balances the irregular sizes across cores
// exactly as an OpenMP dynamic loop would.
#pragma once

#include "gpusim/device.hpp"

namespace irrlu::refbatch {

/// Factors the batch in place with LAPACK-style blocked LU per matrix.
/// `cpu` should be built from DeviceModel::xeon6140x2() (or any CPU-like
/// model). Same array conventions as the irr* kernels.
template <typename T>
void cpu_getrf_batch(gpusim::Device& cpu, gpusim::Stream& stream,
                     T* const* dA_array, const int* ldda, const int* m_vec,
                     const int* n_vec, int* const* ipiv_array,
                     int* info_array, int batch_size);

}  // namespace irrlu::refbatch
