#include "refbatch/cpu_batch.hpp"

#include <algorithm>

#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"

namespace irrlu::refbatch {

template <typename T>
void cpu_getrf_batch(gpusim::Device& cpu, gpusim::Stream& stream,
                     T* const* dA_array, const int* ldda, const int* m_vec,
                     const int* n_vec, int* const* ipiv_array,
                     int* info_array, int batch_size) {
  if (batch_size <= 0) return;
  cpu.launch(stream, {"cpu_getrf_batch", batch_size, 0},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int m = m_vec[id], n = n_vec[id];
    if (std::min(m, n) <= 0) return;
    info_array[id] =
        la::getrf(m, n, dA_array[id], ldda[id], ipiv_array[id], 64);
    // Cache-blocked traffic: the trailing matrix is re-read roughly once
    // per 32-column panel (partial L2 reuse), plus one read+write of the
    // matrix itself.
    const double passes = (std::min(m, n) + 31.0) / 32.0;
    ctx.record(la::getrf_flops(m, n),
               (2.0 + passes) * m * static_cast<double>(n) * sizeof(T));
  });
}

#define IRRLU_INSTANTIATE_CPUBATCH(T)                                     \
  template void cpu_getrf_batch<T>(gpusim::Device&, gpusim::Stream&,      \
                                   T* const*, const int*, const int*,     \
                                   const int*, int* const*, int*, int);

IRRLU_INSTANTIATE_CPUBATCH(float)
IRRLU_INSTANTIATE_CPUBATCH(double)

#undef IRRLU_INSTANTIATE_CPUBATCH

}  // namespace irrlu::refbatch
