// Baseline: the MAGMA-2.6.1-style variable-batch triangular solve the
// paper's irrTRSM improves upon (§IV-D, Figure 6). Characteristics the
// paper calls out, all reproduced here:
//  - the diagonal blocks of T are *explicitly inverted* so the sweep runs
//    on GEMMs — numerically worse than substitution (larger backward
//    error);
//  - the solve is performed *out of place* into a workspace, followed by a
//    copy back into B — extra memory traffic and workspace management that
//    dominate at small sizes (the NVIDIA-profiler observation in the
//    paper).
#pragma once

#include "gpusim/device.hpp"
#include "lapack/types.hpp"

namespace irrlu::refbatch {

/// Solves T[id] X = B[id] in place over the batch (Side::Left only, as in
/// the LU use case), via explicit inversion of 32x32 diagonal blocks, an
/// out-of-place GEMM sweep, and a final copy. m is the largest triangle
/// order, n the largest right-hand-side count; m_vec/n_vec the local dims.
template <typename T>
void inv_trsm(gpusim::Device& dev, gpusim::Stream& stream, la::Uplo uplo,
              la::Trans trans, la::Diag diag, int m, int n,
              T const* const* dT_array, const int* lddt, T* const* dB_array,
              const int* lddb, const int* m_vec, const int* n_vec,
              int batch_size);

}  // namespace irrlu::refbatch
