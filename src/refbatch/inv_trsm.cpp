#include "refbatch/inv_trsm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"

namespace irrlu::refbatch {

namespace {
constexpr int kBlk = 32;       // inverted diagonal block size
constexpr int kApplyCols = 64; // column chunk of the apply kernel
}  // namespace

template <typename T>
void inv_trsm(gpusim::Device& dev, gpusim::Stream& stream, la::Uplo uplo,
              la::Trans trans, la::Diag diag, int m, int n,
              T const* const* dT_array, const int* lddt, T* const* dB_array,
              const int* lddb, const int* m_vec, const int* n_vec,
              int batch_size) {
  IRRLU_CHECK_MSG(trans == la::Trans::No,
                  "inv_trsm baseline implements NoTrans only");
  if (batch_size <= 0 || m <= 0 || n <= 0) return;
  const int nblk = (m + kBlk - 1) / kBlk;

  // Workspace management the paper profiles as overhead: an out-of-place
  // solution buffer sized for the *required* dims of every matrix, plus
  // the inverted diagonal blocks, plus their pointer arrays.
  auto wbuf = dev.alloc<T>(static_cast<std::size_t>(batch_size) * m * n);
  auto ibuf = dev.alloc<T>(static_cast<std::size_t>(batch_size) * nblk *
                           kBlk * kBlk);
  auto wptr = dev.alloc<T*>(static_cast<std::size_t>(batch_size));
  auto wld = dev.alloc<int>(static_cast<std::size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    wptr[i] = wbuf.data() + static_cast<std::size_t>(i) * m * n;
    wld[i] = m;
  }
  T* const inv_blocks = ibuf.data();

  // Copy B into the workspace.
  dev.launch(stream, {"inv_trsm_copy_in", batch_size, 0},
             [=, w = wptr.data()](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int em = std::min(m, m_vec[id]);
    const int en = std::min(n, n_vec[id]);
    if (em <= 0 || en <= 0) return;
    const int ldb = lddb[id];
    for (int c = 0; c < en; ++c)
      for (int r = 0; r < em; ++r)
        w[id][static_cast<std::ptrdiff_t>(c) * m + r] =
            dB_array[id][static_cast<std::ptrdiff_t>(c) * ldb + r];
    ctx.record(0.0, 2.0 * em * en * sizeof(T));
  });

  // Invert the diagonal blocks.
  const gpusim::LaunchConfig icfg{
      "inv_trsm_trtri", batch_size * nblk,
      static_cast<std::size_t>(kBlk) * kBlk * sizeof(T) + 16};
  dev.launch(stream, icfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block() / nblk;
    const int bi = ctx.block() % nblk;
    const int em = std::min(m, m_vec[id]);
    const int eb = std::min(kBlk, em - bi * kBlk);
    if (eb <= 0 || std::min(n, n_vec[id]) <= 0) return;
    const int ldt = lddt[id];
    const T* Tp = dT_array[id] +
                  static_cast<std::ptrdiff_t>(bi * kBlk) * ldt + bi * kBlk;
    T* inv = inv_blocks +
             (static_cast<std::size_t>(id) * nblk + bi) * kBlk * kBlk;
    for (int c = 0; c < eb; ++c)
      for (int r = 0; r < eb; ++r) {
        const bool in_tri = uplo == la::Uplo::Lower ? r >= c : r <= c;
        T v = in_tri ? Tp[static_cast<std::ptrdiff_t>(c) * ldt + r] : T{};
        if (r == c && diag == la::Diag::Unit) v = T(1);
        inv[static_cast<std::ptrdiff_t>(c) * kBlk + r] = v;
      }
    la::trtri(uplo, la::Diag::NonUnit, eb, inv, kBlk);
    ctx.record(eb * eb * static_cast<double>(eb) / 3.0,
               (0.5 + 1.0) * eb * eb * sizeof(T));
  });

  // Block-row sweep: accumulate off-diagonal contributions with GEMM, then
  // multiply by the inverted diagonal block.
  auto apply_inverse = [&](int bi) {
    const gpusim::LaunchConfig acfg{
        "inv_trsm_apply", batch_size,
        static_cast<std::size_t>(kBlk) * kApplyCols * sizeof(T) + 16};
    dev.launch(stream, acfg, [=, w = wptr.data()](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const int em = std::min(m, m_vec[id]);
      const int en = std::min(n, n_vec[id]);
      const int eb = std::min(kBlk, em - bi * kBlk);
      if (eb <= 0 || en <= 0) return;
      const T* inv = inv_blocks +
                     (static_cast<std::size_t>(id) * nblk + bi) * kBlk * kBlk;
      T* Wb = w[id] + bi * kBlk;
      T* tmp = ctx.smem_alloc<T>(static_cast<std::size_t>(kBlk) *
                                 kApplyCols);
      for (int c0 = 0; c0 < en; c0 += kApplyCols) {
        const int ec = std::min(kApplyCols, en - c0);
        // Stage the chunk out of place: the gemm below overwrites Wb
        // (beta = 0) while reading the pre-multiply values from tmp.
        for (int c = 0; c < ec; ++c) {
          const T* src = Wb + static_cast<std::ptrdiff_t>(c0 + c) * m;
          std::copy(src, src + eb, tmp + static_cast<std::ptrdiff_t>(c) * kBlk);
        }
        la::gemm(la::Trans::No, la::Trans::No, eb, ec, eb, T(1), inv, kBlk,
                 tmp, kBlk, T(0),
                 Wb + static_cast<std::ptrdiff_t>(c0) * m, m);
      }
      ctx.record(la::gemm_flops(eb, en, eb),
                 (2.0 * eb * en + eb * eb) * sizeof(T));
    });
  };

  if (uplo == la::Uplo::Lower) {
    for (int bi = 0; bi < nblk; ++bi) {
      if (bi > 0) {
        batch::irr_gemm<T>(dev, stream, la::Trans::No, la::Trans::No, kBlk,
                           n, bi * kBlk, T(-1), dT_array, lddt, bi * kBlk, 0,
                           const_cast<T const* const*>(wptr.data()),
                           wld.data(), 0, 0, T(1), wptr.data(), wld.data(),
                           bi * kBlk, 0, m_vec, n_vec, m_vec, batch_size);
      }
      apply_inverse(bi);
    }
  } else {
    for (int bi = nblk - 1; bi >= 0; --bi) {
      if (bi + 1 < nblk) {
        batch::irr_gemm<T>(dev, stream, la::Trans::No, la::Trans::No, kBlk,
                           n, m - (bi + 1) * kBlk, T(-1), dT_array, lddt,
                           bi * kBlk, (bi + 1) * kBlk,
                           const_cast<T const* const*>(wptr.data()),
                           wld.data(), (bi + 1) * kBlk, 0, T(1), wptr.data(),
                           wld.data(), bi * kBlk, 0, m_vec, n_vec, m_vec,
                           batch_size);
      }
      apply_inverse(bi);
    }
  }

  // Copy the solution back into B — the extra pass the paper's profiler
  // traces blame for the small-size slowdown.
  dev.launch(stream, {"inv_trsm_copy_out", batch_size, 0},
             [=, w = wptr.data()](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int em = std::min(m, m_vec[id]);
    const int en = std::min(n, n_vec[id]);
    if (em <= 0 || en <= 0) return;
    const int ldb = lddb[id];
    for (int c = 0; c < en; ++c)
      for (int r = 0; r < em; ++r)
        dB_array[id][static_cast<std::ptrdiff_t>(c) * ldb + r] =
            w[id][static_cast<std::ptrdiff_t>(c) * m + r];
    ctx.record(0.0, 2.0 * em * en * sizeof(T));
  });

  // Workspace lifetime: the baseline is synchronous (workspace freed on
  // return), one more management cost irrTRSM avoids.
  dev.synchronize(stream);
}

#define IRRLU_INSTANTIATE_INVTRSM(T)                                      \
  template void inv_trsm<T>(gpusim::Device&, gpusim::Stream&, la::Uplo,   \
                            la::Trans, la::Diag, int, int,                \
                            T const* const*, const int*, T* const*,       \
                            const int*, const int*, const int*, int);

IRRLU_INSTANTIATE_INVTRSM(float)
IRRLU_INSTANTIATE_INVTRSM(double)

#undef IRRLU_INSTANTIATE_INVTRSM

}  // namespace irrlu::refbatch
