// Undirected graph in CSR form — the structural view of a sparse matrix
// used by the ordering algorithms. Vertices and edges carry weights so the
// multilevel machinery can coarsen.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace irrlu::ordering {

class Graph {
 public:
  Graph() = default;

  /// Builds a symmetric graph (union of the pattern and its transpose)
  /// from a CSR *pattern*, dropping diagonal entries. Unit weights.
  static Graph from_pattern(int n, const int* row_ptr, const int* col_ind);

  /// Builds a graph from explicit adjacency (must already be symmetric,
  /// no self loops); unit weights.
  static Graph from_adjacency(int n, std::vector<int> ptr,
                              std::vector<int> adj);

  /// Structured 2D / 3D grid graphs (5- and 7-point stencils) for tests
  /// and model problems.
  static Graph grid2d(int nx, int ny);
  static Graph grid3d(int nx, int ny, int nz);

  int num_vertices() const { return n_; }
  std::int64_t num_edges() const {  ///< each undirected edge counted once
    return static_cast<std::int64_t>(adj_.size()) / 2;
  }

  int degree(int v) const { return ptr_[v + 1] - ptr_[v]; }
  const int* neighbors(int v) const { return adj_.data() + ptr_[v]; }

  const std::vector<int>& ptr() const { return ptr_; }
  const std::vector<int>& adj() const { return adj_; }
  const std::vector<int>& vwgt() const { return vwgt_; }
  const std::vector<int>& ewgt() const { return ewgt_; }
  int total_vwgt() const { return total_vwgt_; }

  /// Extracts the vertex-induced subgraph; `local_of` maps old vertex ids
  /// to [0, |vertices|) and must be -1 elsewhere (it is used as scratch and
  /// restored to -1 before returning).
  Graph induced_subgraph(const std::vector<int>& vertices,
                         std::vector<int>& local_of) const;

  /// Connected components: returns component id per vertex and the count.
  int components(std::vector<int>& comp) const;

  // Internal: used by the coarsener.
  void set_weights(std::vector<int> vwgt, std::vector<int> ewgt);

 private:
  int n_ = 0;
  std::vector<int> ptr_, adj_;
  std::vector<int> vwgt_, ewgt_;
  int total_vwgt_ = 0;

  void finalize_weights();
};

}  // namespace irrlu::ordering
