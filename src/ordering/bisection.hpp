// Multilevel graph bisection with vertex-separator extraction — the engine
// of the nested-dissection ordering (the project's METIS substitute).
//
// Pipeline (classic multilevel scheme):
//   1. coarsen by heavy-edge matching until the graph is small,
//   2. initial bipartition by greedy graph growing (BFS region growth),
//   3. uncoarsen, refining with Fiduccia–Mattheyses passes at every level,
//   4. turn the edge separator into a vertex separator by a greedy
//      minimum vertex cover of the cut edges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ordering/graph.hpp"

namespace irrlu::ordering {

struct BisectOptions {
  int coarsen_to = 80;       ///< stop coarsening below this many vertices
  int fm_passes = 8;         ///< max FM refinement passes per level
  double balance = 0.15;     ///< allowed part-weight imbalance fraction
  std::uint64_t seed = 1;    ///< tie-breaking randomness
};

/// Result: side[v] in {0, 1} for the two parts, 2 for separator vertices.
struct Bisection {
  std::vector<std::uint8_t> side;
  int sep_vertices = 0;
  std::int64_t edge_cut = 0;  ///< cut of the bipartition before the cover
};

/// Bisects `g` and extracts a vertex separator. Handles disconnected
/// graphs (components are distributed over the two parts).
Bisection bisect(const Graph& g, const BisectOptions& opts = {});

/// Edge cut of a bipartition (side values 0/1; 2 treated as no side).
std::int64_t edge_cut(const Graph& g, const std::vector<std::uint8_t>& side);

}  // namespace irrlu::ordering
