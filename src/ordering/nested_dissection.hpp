// Fill-reducing orderings: multilevel nested dissection (the METIS
// substitute driving the multifrontal solver), an elimination-graph
// minimum-degree ordering (used on small ND leaves and standalone), and
// reverse Cuthill–McKee (bandwidth reduction, used as a comparison
// ordering and in tests).
#pragma once

#include <vector>

#include "ordering/bisection.hpp"
#include "ordering/graph.hpp"

namespace irrlu::ordering {

struct NDOptions {
  int leaf_size = 48;      ///< subgraphs at most this big are leaves
  bool md_on_leaves = true;  ///< order leaves by minimum degree
  BisectOptions bisect;
};

/// One node of the separator tree: either a leaf block of contiguously
/// ordered vertices or a separator with two children. Ranges refer to the
/// *new* (permuted) ordering; separators own the highest-numbered range of
/// their subtree. This tree is the skeleton of the multifrontal assembly
/// tree.
struct SepTreeNode {
  int begin = 0, end = 0;  ///< new-order vertex range [begin, end)
  int left = -1, right = -1;  ///< child node ids (-1 for leaves)
  int parent = -1;
};

struct Ordering {
  /// perm[new_index] = old_index (the elimination order).
  std::vector<int> perm;
  /// iperm[old_index] = new_index.
  std::vector<int> iperm;
  /// Separator tree; node `root` covers the whole graph.
  std::vector<SepTreeNode> tree;
  int root = -1;
};

/// Nested dissection: recursively bisects the graph, ordering each part
/// before its separator (separator vertices are eliminated last). The
/// resulting elimination trees have the wide-bottom/heavy-top shape whose
/// front-size distributions the paper's Figure 13 shows.
Ordering nested_dissection(const Graph& g, const NDOptions& opts = {});

/// Minimum-degree ordering on the elimination graph (simple quotient-free
/// implementation; quadratic worst case, intended for moderate n).
std::vector<int> minimum_degree(const Graph& g);

/// Reverse Cuthill–McKee.
std::vector<int> rcm(const Graph& g);

/// Validates that perm is a permutation of [0, n).
bool is_permutation(const std::vector<int>& perm, int n);

}  // namespace irrlu::ordering
