#include "ordering/nested_dissection.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace irrlu::ordering {

namespace {

/// Recursive worker: appends the elimination order of the subgraph induced
/// by `vertices` (old ids) to `out.perm` and builds the separator tree.
/// Returns the id of the tree node covering this subgraph.
int nd_recurse(const Graph& g, const std::vector<int>& vertices,
               std::vector<int>& local_of, const NDOptions& opts,
               Ordering& out) {
  const int sn = static_cast<int>(vertices.size());
  const Graph sub = g.induced_subgraph(vertices, local_of);

  auto make_leaf = [&](const std::vector<int>& order_local) {
    SepTreeNode node;
    node.begin = static_cast<int>(out.perm.size());
    for (int l : order_local)
      out.perm.push_back(vertices[static_cast<std::size_t>(l)]);
    node.end = static_cast<int>(out.perm.size());
    out.tree.push_back(node);
    return static_cast<int>(out.tree.size()) - 1;
  };

  if (sn <= opts.leaf_size) {
    std::vector<int> lp;
    if (opts.md_on_leaves) {
      lp = minimum_degree(sub);
    } else {
      lp.resize(static_cast<std::size_t>(sn));
      std::iota(lp.begin(), lp.end(), 0);
    }
    return make_leaf(lp);
  }

  const Bisection bis = bisect(sub, opts.bisect);
  std::vector<int> part0, part1, sep;
  for (int l = 0; l < sn; ++l) {
    const int v = vertices[static_cast<std::size_t>(l)];
    switch (bis.side[static_cast<std::size_t>(l)]) {
      case 0: part0.push_back(v); break;
      case 1: part1.push_back(v); break;
      default: sep.push_back(v); break;
    }
  }
  // Degenerate separators (empty part) would recurse forever; fall back to
  // minimum degree for such pathological subgraphs.
  if (part0.empty() || part1.empty()) {
    std::vector<int> lp = minimum_degree(sub);
    return make_leaf(lp);
  }
  const int lid = nd_recurse(g, part0, local_of, opts, out);
  const int rid = nd_recurse(g, part1, local_of, opts, out);
  SepTreeNode node;
  node.begin = static_cast<int>(out.perm.size());
  for (int v : sep) out.perm.push_back(v);
  node.end = static_cast<int>(out.perm.size());
  node.left = lid;
  node.right = rid;
  out.tree.push_back(node);
  const int id = static_cast<int>(out.tree.size()) - 1;
  out.tree[static_cast<std::size_t>(lid)].parent = id;
  out.tree[static_cast<std::size_t>(rid)].parent = id;
  return id;
}

}  // namespace

Ordering nested_dissection(const Graph& g, const NDOptions& opts) {
  const int n = g.num_vertices();
  Ordering out;
  out.perm.reserve(static_cast<std::size_t>(n));
  std::vector<int> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::vector<int> local_of(static_cast<std::size_t>(n), -1);
  out.root = nd_recurse(g, all, local_of, opts, out);
  IRRLU_CHECK(is_permutation(out.perm, n));
  out.iperm.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.iperm[static_cast<std::size_t>(out.perm[static_cast<std::size_t>(i)])] =
        i;
  return out;
}

std::vector<int> minimum_degree(const Graph& g) {
  const int n = g.num_vertices();
  // Elimination graph as adjacency sets; eliminating v connects its
  // neighborhood into a clique.
  std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k)
      adj[static_cast<std::size_t>(v)].insert(
          g.adj()[static_cast<std::size_t>(k)]);

  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t bestdeg = static_cast<std::size_t>(-1);
    for (int v = 0; v < n; ++v)
      if (!eliminated[static_cast<std::size_t>(v)] &&
          adj[static_cast<std::size_t>(v)].size() < bestdeg) {
        bestdeg = adj[static_cast<std::size_t>(v)].size();
        best = v;
      }
    eliminated[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);
    // Form the clique among best's remaining neighbors.
    std::vector<int> nbrs(adj[static_cast<std::size_t>(best)].begin(),
                          adj[static_cast<std::size_t>(best)].end());
    for (int u : nbrs) adj[static_cast<std::size_t>(u)].erase(best);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[static_cast<std::size_t>(nbrs[i])].insert(nbrs[j]);
        adj[static_cast<std::size_t>(nbrs[j])].insert(nbrs[i]);
      }
    adj[static_cast<std::size_t>(best)].clear();
  }
  return order;
}

std::vector<int> rcm(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);

  auto bfs_order = [&](int start) {
    std::vector<int> queue = {start};
    visited[static_cast<std::size_t>(start)] = 1;
    std::size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      order.push_back(v);
      std::vector<int> nb;
      for (int k = g.ptr()[static_cast<std::size_t>(v)];
           k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = g.adj()[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          nb.push_back(u);
        }
      }
      std::sort(nb.begin(), nb.end(),
                [&](int a, int b) { return g.degree(a) < g.degree(b); });
      queue.insert(queue.end(), nb.begin(), nb.end());
    }
  };

  for (int s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    // Pseudo-peripheral start: the minimum-degree vertex of the component.
    int start = s;
    // (simple heuristic: the component is discovered by the BFS itself)
    bfs_order(start);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

bool is_permutation(const std::vector<int>& perm, int n) {
  if (static_cast<int>(perm.size()) != n) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (int v : perm) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = 1;
  }
  return true;
}

}  // namespace irrlu::ordering
