// MC64 substitute (Duff–Koster maximum-product transversal with scaling):
// finds a column permutation q and diagonal scalings Dr, Dc such that the
// scaled, permuted matrix Dr * A(:, q) * Dc has all diagonal entries equal
// to 1 in magnitude and all off-diagonal entries of magnitude <= 1 — the
// static-pivoting preprocaution the paper's sparse solver applies before
// restricting pivoting to the diagonal blocks (§III-A).
//
// Implementation: the assignment problem on costs
//     c_ij = log(max_k |a_ik|) - log |a_ij|
// solved by shortest augmenting paths (sparse Jonker–Volgenant with a
// Dijkstra heap); the optimal duals yield the scalings directly.
#pragma once

#include <vector>

namespace irrlu::ordering {

struct Mc64Result {
  /// q[i] = column matched to row i; permuted matrix column i is original
  /// column q[i], placing the matched (maximum-product) entries on the
  /// diagonal.
  std::vector<int> col_of_row;
  /// Row and column scalings (apply as Dr * A * Dc).
  std::vector<double> dr, dc;
  bool structurally_nonsingular = true;
};

/// Runs the matching + scaling on a square CSR matrix (pattern ptr/ind,
/// values val). Zero entries are treated as structural zeros.
Mc64Result mc64_scaling(int n, const int* ptr, const int* ind,
                        const double* val);

}  // namespace irrlu::ordering
