#include "ordering/bisection.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace irrlu::ordering {

namespace {

/// Heavy-edge matching: visits vertices in random order, matching each
/// unmatched vertex to its unmatched neighbor with the heaviest edge.
/// Returns match[v] (== v for unmatched) and the number of coarse vertices.
int heavy_edge_matching(const Graph& g, Rng& rng, std::vector<int>& match) {
  const int n = g.num_vertices();
  match.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  int coarse = 0;
  for (int v : order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    int best = -1, bestw = -1;
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      if (match[static_cast<std::size_t>(u)] >= 0 || u == v) continue;
      const int w = g.ewgt()[static_cast<std::size_t>(k)];
      if (w > bestw) {
        bestw = w;
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;
    }
    ++coarse;
  }
  return coarse;
}

/// Contracts matched pairs into a coarse graph; cmap[v] = coarse vertex.
Graph coarsen(const Graph& g, const std::vector<int>& match,
              std::vector<int>& cmap, int coarse_n) {
  const int n = g.num_vertices();
  cmap.assign(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    if (cmap[static_cast<std::size_t>(v)] >= 0) continue;
    const int u = match[static_cast<std::size_t>(v)];
    cmap[static_cast<std::size_t>(v)] = next;
    cmap[static_cast<std::size_t>(u)] = next;
    ++next;
  }
  IRRLU_CHECK(next == coarse_n);

  std::vector<int> ptr(static_cast<std::size_t>(coarse_n) + 1, 0);
  std::vector<int> adj, ewgt;
  std::vector<int> vwgt(static_cast<std::size_t>(coarse_n), 0);
  std::vector<int> accum(static_cast<std::size_t>(coarse_n), -1);
  std::vector<int> accum_w(static_cast<std::size_t>(coarse_n), 0);
  std::vector<int> touched;

  for (int cv = 0, v = 0; v < n; ++v) {
    if (cmap[static_cast<std::size_t>(v)] != cv) continue;
    // Gather the pair (v, match[v]) into coarse vertex cv.
    const int pair[2] = {v, match[static_cast<std::size_t>(v)]};
    touched.clear();
    for (int pi = 0; pi < (pair[0] == pair[1] ? 1 : 2); ++pi) {
      const int x = pair[pi];
      vwgt[static_cast<std::size_t>(cv)] +=
          pi == 0 || pair[0] != pair[1]
              ? g.vwgt()[static_cast<std::size_t>(x)]
              : 0;
      for (int k = g.ptr()[static_cast<std::size_t>(x)];
           k < g.ptr()[static_cast<std::size_t>(x) + 1]; ++k) {
        const int cu = cmap[static_cast<std::size_t>(
            g.adj()[static_cast<std::size_t>(k)])];
        if (cu == cv) continue;  // contracted edge
        if (accum[static_cast<std::size_t>(cu)] != cv) {
          accum[static_cast<std::size_t>(cu)] = cv;
          accum_w[static_cast<std::size_t>(cu)] = 0;
          touched.push_back(cu);
        }
        accum_w[static_cast<std::size_t>(cu)] +=
            g.ewgt()[static_cast<std::size_t>(k)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int cu : touched) {
      adj.push_back(cu);
      ewgt.push_back(accum_w[static_cast<std::size_t>(cu)]);
    }
    ptr[static_cast<std::size_t>(cv) + 1] = static_cast<int>(adj.size());
    ++cv;
  }
  // Fix vwgt double-count: the loop above adds each endpoint once because
  // the pair is iterated explicitly; for self-matched vertices pi runs once.
  Graph cg = Graph::from_adjacency(coarse_n, std::move(ptr), std::move(adj));
  cg.set_weights(std::move(vwgt), std::move(ewgt));
  return cg;
}

/// Greedy graph growing: BFS from a random vertex until half the total
/// vertex weight is claimed. Repeats a few times, keeping the best cut.
void initial_partition(const Graph& g, Rng& rng,
                       std::vector<std::uint8_t>& side, double balance) {
  const int n = g.num_vertices();
  const int target = g.total_vwgt() / 2;
  std::vector<std::uint8_t> best;
  std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
  const int tries = std::min(4, n);
  for (int t = 0; t < tries; ++t) {
    side.assign(static_cast<std::size_t>(n), 1);
    int w0 = 0;
    std::vector<int> queue;
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
    int start = rng.uniform_int(0, n - 1);
    queue.push_back(start);
    seen[static_cast<std::size_t>(start)] = 1;
    std::size_t head = 0;
    while (w0 < target) {
      if (head == queue.size()) {
        // Disconnected: grow from a fresh unvisited vertex.
        int fresh = -1;
        for (int v = 0; v < n; ++v)
          if (!seen[static_cast<std::size_t>(v)]) {
            fresh = v;
            break;
          }
        if (fresh < 0) break;
        seen[static_cast<std::size_t>(fresh)] = 1;
        queue.push_back(fresh);
      }
      const int v = queue[head++];
      side[static_cast<std::size_t>(v)] = 0;
      w0 += g.vwgt()[static_cast<std::size_t>(v)];
      for (int k = g.ptr()[static_cast<std::size_t>(v)];
           k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = g.adj()[static_cast<std::size_t>(k)];
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
    const std::int64_t cut = edge_cut(g, side);
    if (cut < best_cut) {
      best_cut = cut;
      best = side;
    }
  }
  side = best;
  (void)balance;
}

/// One Fiduccia–Mattheyses-style pass: greedily move the best-gain movable
/// vertex (keeping balance), remember the best prefix, roll back the rest.
/// Returns the cut improvement of the pass.
std::int64_t fm_pass(const Graph& g, std::vector<std::uint8_t>& side,
                     double balance) {
  const int n = g.num_vertices();
  std::vector<std::int64_t> gain(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> locked(static_cast<std::size_t>(n), 0);
  int w[2] = {0, 0};
  for (int v = 0; v < n; ++v)
    w[side[static_cast<std::size_t>(v)]] +=
        g.vwgt()[static_cast<std::size_t>(v)];
  const int total = w[0] + w[1];
  const int max_w = static_cast<int>((0.5 + balance) * total) + 1;

  auto compute_gain = [&](int v) {
    std::int64_t gv = 0;
    const int sv = side[static_cast<std::size_t>(v)];
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      const int ew = g.ewgt()[static_cast<std::size_t>(k)];
      gv += side[static_cast<std::size_t>(u)] == sv ? -ew : ew;
    }
    return gv;
  };
  for (int v = 0; v < n; ++v) gain[static_cast<std::size_t>(v)] = compute_gain(v);

  std::vector<int> moved;
  std::int64_t cum = 0, best_cum = 0;
  std::size_t best_prefix = 0;
  const int max_moves = std::min(n, 2000);
  for (int step = 0; step < max_moves; ++step) {
    int best = -1;
    std::int64_t bestg = std::numeric_limits<std::int64_t>::min();
    for (int v = 0; v < n; ++v) {
      if (locked[static_cast<std::size_t>(v)]) continue;
      const int sv = side[static_cast<std::size_t>(v)];
      if (w[1 - sv] + g.vwgt()[static_cast<std::size_t>(v)] > max_w) continue;
      if (gain[static_cast<std::size_t>(v)] > bestg) {
        bestg = gain[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    if (best < 0) break;
    const int sv = side[static_cast<std::size_t>(best)];
    side[static_cast<std::size_t>(best)] =
        static_cast<std::uint8_t>(1 - sv);
    w[sv] -= g.vwgt()[static_cast<std::size_t>(best)];
    w[1 - sv] += g.vwgt()[static_cast<std::size_t>(best)];
    locked[static_cast<std::size_t>(best)] = 1;
    moved.push_back(best);
    cum += bestg;
    if (cum > best_cum) {
      best_cum = cum;
      best_prefix = moved.size();
    }
    // Update neighbor gains.
    for (int k = g.ptr()[static_cast<std::size_t>(best)];
         k < g.ptr()[static_cast<std::size_t>(best) + 1]; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      if (!locked[static_cast<std::size_t>(u)])
        gain[static_cast<std::size_t>(u)] = compute_gain(u);
    }
    if (cum < best_cum - 50) break;  // hill got too deep; stop early
  }
  // Roll back moves beyond the best prefix.
  for (std::size_t i = moved.size(); i > best_prefix; --i) {
    const int v = moved[i - 1];
    const int sv = side[static_cast<std::size_t>(v)];
    side[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(1 - sv);
  }
  return best_cum;
}

/// Greedy minimum vertex cover of the cut edges -> vertex separator.
void extract_separator(const Graph& g, std::vector<std::uint8_t>& side,
                       Bisection& out) {
  const int n = g.num_vertices();
  // Count, per vertex, the incident cut edges.
  std::vector<int> cutdeg(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v)
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      if (side[static_cast<std::size_t>(u)] !=
          side[static_cast<std::size_t>(v)])
        ++cutdeg[static_cast<std::size_t>(v)];
    }
  // Greedy cover: repeatedly take the vertex covering the most uncovered
  // cut edges. Vertices in the cover become separator (side = 2).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return cutdeg[static_cast<std::size_t>(a)] >
           cutdeg[static_cast<std::size_t>(b)];
  });
  for (int v : order) {
    if (cutdeg[static_cast<std::size_t>(v)] <= 0) continue;
    bool uncovered = false;
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1] && !uncovered; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      uncovered = side[static_cast<std::size_t>(u)] != 2 &&
                  side[static_cast<std::size_t>(u)] !=
                      side[static_cast<std::size_t>(v)];
    }
    if (!uncovered) continue;
    side[static_cast<std::size_t>(v)] = 2;
    ++out.sep_vertices;
  }
}

Bisection bisect_recursive(const Graph& g, Rng& rng,
                           const BisectOptions& opts) {
  Bisection out;
  const int n = g.num_vertices();
  if (n <= opts.coarsen_to) {
    initial_partition(g, rng, out.side, opts.balance);
    for (int p = 0; p < opts.fm_passes; ++p)
      if (fm_pass(g, out.side, opts.balance) <= 0) break;
    return out;
  }
  std::vector<int> match;
  const int coarse_n = heavy_edge_matching(g, rng, match);
  if (coarse_n >= n) {  // matching failed to shrink (no edges): direct
    initial_partition(g, rng, out.side, opts.balance);
    return out;
  }
  std::vector<int> cmap;
  const Graph cg = coarsen(g, match, cmap, coarse_n);
  const Bisection coarse_bis = bisect_recursive(cg, rng, opts);
  out.side.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    out.side[static_cast<std::size_t>(v)] =
        coarse_bis.side[static_cast<std::size_t>(
            cmap[static_cast<std::size_t>(v)])];
  for (int p = 0; p < opts.fm_passes; ++p)
    if (fm_pass(g, out.side, opts.balance) <= 0) break;
  return out;
}

}  // namespace

std::int64_t edge_cut(const Graph& g, const std::vector<std::uint8_t>& side) {
  std::int64_t cut = 0;
  for (int v = 0; v < g.num_vertices(); ++v)
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
      const int u = g.adj()[static_cast<std::size_t>(k)];
      if (u > v && side[static_cast<std::size_t>(u)] != 2 &&
          side[static_cast<std::size_t>(v)] != 2 &&
          side[static_cast<std::size_t>(u)] !=
              side[static_cast<std::size_t>(v)])
        cut += g.ewgt()[static_cast<std::size_t>(k)];
    }
  return cut;
}

Bisection bisect(const Graph& g, const BisectOptions& opts) {
  Rng rng(opts.seed);
  Bisection out = bisect_recursive(g, rng, opts);
  out.edge_cut = edge_cut(g, out.side);
  extract_separator(g, out.side, out);
  return out;
}

}  // namespace irrlu::ordering
