#include "ordering/graph.hpp"

#include <algorithm>
#include <numeric>

namespace irrlu::ordering {

void Graph::finalize_weights() {
  if (vwgt_.empty()) vwgt_.assign(static_cast<std::size_t>(n_), 1);
  if (ewgt_.empty()) ewgt_.assign(adj_.size(), 1);
  total_vwgt_ = std::accumulate(vwgt_.begin(), vwgt_.end(), 0);
}

Graph Graph::from_pattern(int n, const int* row_ptr, const int* col_ind) {
  IRRLU_CHECK(n >= 0);
  // Count symmetric degrees (i->j and j->i for every off-diagonal entry),
  // then dedupe per row.
  std::vector<std::vector<int>> nbr(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (int k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const int j = col_ind[k];
      IRRLU_CHECK(j >= 0 && j < n);
      if (j == i) continue;
      nbr[static_cast<std::size_t>(i)].push_back(j);
      nbr[static_cast<std::size_t>(j)].push_back(i);
    }
  Graph g;
  g.n_ = n;
  g.ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    auto& v = nbr[static_cast<std::size_t>(i)];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    g.ptr_[static_cast<std::size_t>(i) + 1] =
        g.ptr_[static_cast<std::size_t>(i)] + static_cast<int>(v.size());
  }
  g.adj_.reserve(static_cast<std::size_t>(g.ptr_.back()));
  for (int i = 0; i < n; ++i)
    g.adj_.insert(g.adj_.end(), nbr[static_cast<std::size_t>(i)].begin(),
                  nbr[static_cast<std::size_t>(i)].end());
  g.finalize_weights();
  return g;
}

Graph Graph::from_adjacency(int n, std::vector<int> ptr,
                            std::vector<int> adj) {
  IRRLU_CHECK(static_cast<int>(ptr.size()) == n + 1);
  Graph g;
  g.n_ = n;
  g.ptr_ = std::move(ptr);
  g.adj_ = std::move(adj);
  g.finalize_weights();
  return g;
}

Graph Graph::grid2d(int nx, int ny) {
  const int n = nx * ny;
  std::vector<int> ptr(static_cast<std::size_t>(n) + 1, 0), adj;
  auto id = [&](int x, int y) { return y * nx + x; };
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const int v = id(x, y);
      if (x > 0) adj.push_back(id(x - 1, y));
      if (x + 1 < nx) adj.push_back(id(x + 1, y));
      if (y > 0) adj.push_back(id(x, y - 1));
      if (y + 1 < ny) adj.push_back(id(x, y + 1));
      ptr[static_cast<std::size_t>(v) + 1] = static_cast<int>(adj.size());
    }
  return from_adjacency(n, std::move(ptr), std::move(adj));
}

Graph Graph::grid3d(int nx, int ny, int nz) {
  const int n = nx * ny * nz;
  std::vector<int> ptr(static_cast<std::size_t>(n) + 1, 0), adj;
  auto id = [&](int x, int y, int z) { return (z * ny + y) * nx + x; };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const int v = id(x, y, z);
        if (x > 0) adj.push_back(id(x - 1, y, z));
        if (x + 1 < nx) adj.push_back(id(x + 1, y, z));
        if (y > 0) adj.push_back(id(x, y - 1, z));
        if (y + 1 < ny) adj.push_back(id(x, y + 1, z));
        if (z > 0) adj.push_back(id(x, y, z - 1));
        if (z + 1 < nz) adj.push_back(id(x, y, z + 1));
        ptr[static_cast<std::size_t>(v) + 1] = static_cast<int>(adj.size());
      }
  return from_adjacency(n, std::move(ptr), std::move(adj));
}

void Graph::set_weights(std::vector<int> vwgt, std::vector<int> ewgt) {
  IRRLU_CHECK(static_cast<int>(vwgt.size()) == n_);
  IRRLU_CHECK(ewgt.size() == adj_.size());
  vwgt_ = std::move(vwgt);
  ewgt_ = std::move(ewgt);
  total_vwgt_ = std::accumulate(vwgt_.begin(), vwgt_.end(), 0);
}

Graph Graph::induced_subgraph(const std::vector<int>& vertices,
                              std::vector<int>& local_of) const {
  const int sn = static_cast<int>(vertices.size());
  for (int l = 0; l < sn; ++l)
    local_of[static_cast<std::size_t>(vertices[static_cast<std::size_t>(l)])] =
        l;
  Graph s;
  s.n_ = sn;
  s.ptr_.assign(static_cast<std::size_t>(sn) + 1, 0);
  s.vwgt_.resize(static_cast<std::size_t>(sn));
  for (int l = 0; l < sn; ++l) {
    const int v = vertices[static_cast<std::size_t>(l)];
    s.vwgt_[static_cast<std::size_t>(l)] = vwgt_[static_cast<std::size_t>(v)];
    for (int k = ptr_[static_cast<std::size_t>(v)];
         k < ptr_[static_cast<std::size_t>(v) + 1]; ++k) {
      const int u = adj_[static_cast<std::size_t>(k)];
      if (local_of[static_cast<std::size_t>(u)] >= 0) {
        s.adj_.push_back(local_of[static_cast<std::size_t>(u)]);
        s.ewgt_.push_back(ewgt_[static_cast<std::size_t>(k)]);
      }
    }
    s.ptr_[static_cast<std::size_t>(l) + 1] = static_cast<int>(s.adj_.size());
  }
  for (int v : vertices) local_of[static_cast<std::size_t>(v)] = -1;
  s.total_vwgt_ = std::accumulate(s.vwgt_.begin(), s.vwgt_.end(), 0);
  return s;
}

int Graph::components(std::vector<int>& comp) const {
  comp.assign(static_cast<std::size_t>(n_), -1);
  int nc = 0;
  std::vector<int> stack;
  for (int s = 0; s < n_; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    stack.push_back(s);
    comp[static_cast<std::size_t>(s)] = nc;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int k = ptr_[static_cast<std::size_t>(v)];
           k < ptr_[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = adj_[static_cast<std::size_t>(k)];
        if (comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = nc;
          stack.push_back(u);
        }
      }
    }
    ++nc;
  }
  return nc;
}

}  // namespace irrlu::ordering
