#include "ordering/mc64.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace irrlu::ordering {

Mc64Result mc64_scaling(int n, const int* ptr, const int* ind,
                        const double* val) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Mc64Result out;
  out.col_of_row.assign(static_cast<std::size_t>(n), -1);
  out.dr.assign(static_cast<std::size_t>(n), 1.0);
  out.dc.assign(static_cast<std::size_t>(n), 1.0);

  // Costs: c_ij = log(rmax_i) - log|a_ij| >= 0.
  std::vector<double> log_rmax(static_cast<std::size_t>(n), -kInf);
  for (int i = 0; i < n; ++i) {
    double m = 0;
    for (int k = ptr[i]; k < ptr[i + 1]; ++k)
      m = std::max(m, std::abs(val[k]));
    if (m > 0) log_rmax[static_cast<std::size_t>(i)] = std::log(m);
  }
  auto cost = [&](int i, int k) {
    const double a = std::abs(val[k]);
    if (a == 0.0) return kInf;
    return log_rmax[static_cast<std::size_t>(i)] - std::log(a);
  };

  std::vector<double> u(static_cast<std::size_t>(n), 0.0);
  std::vector<double> v(static_cast<std::size_t>(n), 0.0);
  std::vector<int> row_of_col(static_cast<std::size_t>(n), -1);

  // Cheap initialization: match rows to their maximum entry if free.
  for (int i = 0; i < n; ++i)
    for (int k = ptr[i]; k < ptr[i + 1]; ++k) {
      if (cost(i, k) == 0.0 && row_of_col[static_cast<std::size_t>(ind[k])] <
                                   0) {
        out.col_of_row[static_cast<std::size_t>(i)] = ind[k];
        row_of_col[static_cast<std::size_t>(ind[k])] = i;
        break;
      }
    }

  // Shortest augmenting path per unmatched row.
  std::vector<double> dist(static_cast<std::size_t>(n));
  std::vector<int> prev_row(static_cast<std::size_t>(n));
  std::vector<char> in_tree(static_cast<std::size_t>(n));
  using QEntry = std::pair<double, int>;  // (distance, column)

  for (int r0 = 0; r0 < n; ++r0) {
    if (out.col_of_row[static_cast<std::size_t>(r0)] >= 0) continue;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(prev_row.begin(), prev_row.end(), -1);
    std::fill(in_tree.begin(), in_tree.end(), 0);
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> pq;

    int r = r0;
    double shortest = 0.0;
    int final_col = -1;
    std::vector<int> visited_cols;

    while (true) {
      for (int k = ptr[r]; k < ptr[r + 1]; ++k) {
        const int j = ind[k];
        if (in_tree[static_cast<std::size_t>(j)]) continue;
        const double c = cost(r, k);
        if (c == kInf) continue;
        const double alt = shortest + c - u[static_cast<std::size_t>(r)] -
                           v[static_cast<std::size_t>(j)];
        if (alt < dist[static_cast<std::size_t>(j)] - 1e-15) {
          dist[static_cast<std::size_t>(j)] = alt;
          prev_row[static_cast<std::size_t>(j)] = r;
          pq.emplace(alt, j);
        }
      }
      int jstar = -1;
      while (!pq.empty()) {
        auto [d, j] = pq.top();
        pq.pop();
        if (in_tree[static_cast<std::size_t>(j)] ||
            d > dist[static_cast<std::size_t>(j)] + 1e-15)
          continue;
        jstar = j;
        break;
      }
      if (jstar < 0) break;  // no augmenting path: structurally singular
      in_tree[static_cast<std::size_t>(jstar)] = 1;
      visited_cols.push_back(jstar);
      shortest = dist[static_cast<std::size_t>(jstar)];
      if (row_of_col[static_cast<std::size_t>(jstar)] < 0) {
        final_col = jstar;
        break;
      }
      r = row_of_col[static_cast<std::size_t>(jstar)];
    }

    if (final_col < 0) {
      out.structurally_nonsingular = false;
      continue;
    }
    // Dual updates (keep reduced costs non-negative).
    u[static_cast<std::size_t>(r0)] += shortest;
    for (int j : visited_cols) {
      if (j == final_col) continue;
      const int rj = row_of_col[static_cast<std::size_t>(j)];
      u[static_cast<std::size_t>(rj)] +=
          shortest - dist[static_cast<std::size_t>(j)];
      v[static_cast<std::size_t>(j)] -=
          shortest - dist[static_cast<std::size_t>(j)];
    }
    // Augment along the predecessor chain.
    int j = final_col;
    while (j >= 0) {
      const int ri = prev_row[static_cast<std::size_t>(j)];
      const int jnext = out.col_of_row[static_cast<std::size_t>(ri)];
      out.col_of_row[static_cast<std::size_t>(ri)] = j;
      row_of_col[static_cast<std::size_t>(j)] = ri;
      j = jnext;
    }
  }

  // Scalings from the duals: Dr_i = e^{u_i} / rmax_i, Dc_j = e^{v_j}.
  for (int i = 0; i < n; ++i) {
    if (log_rmax[static_cast<std::size_t>(i)] == -kInf) continue;  // empty
    out.dr[static_cast<std::size_t>(i)] =
        std::exp(u[static_cast<std::size_t>(i)] -
                 log_rmax[static_cast<std::size_t>(i)]);
  }
  for (int j = 0; j < n; ++j)
    out.dc[static_cast<std::size_t>(j)] =
        std::exp(v[static_cast<std::size_t>(j)]);
  return out;
}

}  // namespace irrlu::ordering
