// Non-owning column-major matrix views, the lingua franca of the dense
// kernels. Mirrors the (pointer, ld) convention of BLAS/LAPACK so that the
// irregular-batch code can hand out submatrix views with zero copies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace irrlu {

/// Lightweight non-owning view of a column-major matrix block.
///
/// Element (i, j) lives at data[i + j * ld]. The view carries its logical
/// extent (rows × cols); `ld >= rows` as in BLAS.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    IRRLU_DEBUG_ASSERT(rows >= 0 && cols >= 0);
    IRRLU_DEBUG_ASSERT(ld >= rows || cols == 0);
  }

  T* data() const { return data_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(int i, int j) const {
    IRRLU_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::ptrdiff_t>(j) * ld_ + i];
  }

  /// Subblock view of `r` rows and `c` cols starting at (i, j).
  MatrixView block(int i, int j, int r, int c) const {
    IRRLU_DEBUG_ASSERT(i >= 0 && j >= 0 && r >= 0 && c >= 0);
    IRRLU_DEBUG_ASSERT(i + r <= rows_ && j + c <= cols_);
    return MatrixView(data_ + static_cast<std::ptrdiff_t>(j) * ld_ + i, r, c,
                      ld_);
  }

  MatrixView col(int j) const { return block(0, j, rows_, 1); }
  MatrixView row(int i) const { return block(i, 0, 1, cols_); }

  operator MatrixView<const T>() const {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

template <typename T>
using ConstMatrixView = MatrixView<const T>;

/// Owning column-major matrix with ld == rows; hands out views.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, T fill = T{})
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    IRRLU_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int ld() const { return rows_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(int i, int j) {
    IRRLU_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const T& operator()(int i, int j) const {
    IRRLU_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  MatrixView<T> view() { return MatrixView<T>(data(), rows_, cols_, rows_); }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data(), rows_, cols_, rows_);
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

}  // namespace irrlu
