// Deterministic random generation helpers. All tests and benchmarks seed
// explicitly so results are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/matrix_view.hpp"

namespace irrlu {

/// Thin wrapper over a 64-bit Mersenne twister with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

  /// Batch of sizes uniformly sampled in [lo, hi] — the paper's workload
  /// generator for Figures 10/11 ("sizes randomly sampled between 1 and N").
  std::vector<int> uniform_sizes(int count, int lo, int hi) {
    std::vector<int> s(static_cast<std::size_t>(count));
    for (auto& v : s) v = uniform_int(lo, hi);
    return s;
  }

  template <typename T>
  void fill_uniform(MatrixView<T> a, T lo = T(-1), T hi = T(1)) {
    std::uniform_real_distribution<double> d(static_cast<double>(lo),
                                             static_cast<double>(hi));
    for (int j = 0; j < a.cols(); ++j)
      for (int i = 0; i < a.rows(); ++i) a(i, j) = static_cast<T>(d(gen_));
  }

  /// Fills a with random entries and boosts the diagonal so the matrix is
  /// comfortably non-singular (used where pivot growth is not under test).
  template <typename T>
  void fill_diagonally_dominant(MatrixView<T> a) {
    fill_uniform(a);
    const int n = a.rows() < a.cols() ? a.rows() : a.cols();
    for (int i = 0; i < n; ++i)
      a(i, i) += static_cast<T>(a.rows() >= 1 ? a.rows() : 1);
  }

 private:
  std::mt19937_64 gen_;
};

}  // namespace irrlu
