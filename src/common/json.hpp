// Shared JSON support: a streaming writer used by the benchmark drivers
// and the trace exporters, plus a small recursive-descent parser used to
// read those files back (trace validation, summary consumers).
//
// The writer tracks nesting and comma placement so call sites only state
// structure; containers can be marked compact to keep large event arrays
// one line per element (Chrome traces easily reach 1e5 events).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irrlu::json {

/// Escapes a string for inclusion inside JSON double quotes (quotes,
/// backslashes, and control characters; no outer quotes added).
std::string escape(std::string_view s);

/// Streaming JSON writer over a FILE*. Structural errors (value with no
/// pending key inside an object, unbalanced end_*) throw irrlu::Error.
class Writer {
 public:
  explicit Writer(FILE* f) : f_(f) {}

  /// `compact` suppresses newlines/indentation inside this container.
  void begin_object(bool compact = false);
  void end_object();
  void begin_array(bool compact = false);
  void end_array();

  void key(std::string_view k);
  void string(std::string_view v);
  /// `fmt` is a printf format for one double ("%.17g" round-trips).
  void number(double v, const char* fmt = "%.17g");
  void number_int(long long v);
  void boolean(bool v);
  void null();

  // Key + value in one call, for flat objects.
  void kv(std::string_view k, std::string_view v) { key(k); string(v); }
  void kv(std::string_view k, const char* v) { key(k); string(v); }
  void kv(std::string_view k, double v, const char* fmt = "%.17g") {
    key(k);
    number(v, fmt);
  }
  void kv_int(std::string_view k, long long v) { key(k); number_int(v); }
  void kv_bool(std::string_view k, bool v) { key(k); boolean(v); }

 private:
  struct Frame {
    bool array;
    bool compact;
    int count = 0;
  };
  void value_prefix();  ///< separator/indent before an array element or root
  void raw(std::string_view s);

  FILE* f_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

/// Parsed JSON value (arrays/objects own their children; object key order
/// is preserved).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;                           ///< array elements
  std::vector<std::pair<std::string, Value>> fields;  ///< object members

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  // Checked accessors (throw irrlu::Error on type mismatch).
  double as_number() const;
  long long as_int() const;
  const std::string& as_string() const;
  bool as_bool() const;

  /// find() + as_number(), with a fallback when the key is absent.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key,
                        const std::string& fallback) const;
};

/// Parses a complete JSON document; throws irrlu::Error on malformed input
/// or trailing garbage.
Value parse(std::string_view text);

/// Reads and parses a whole file; throws irrlu::Error if unreadable.
Value parse_file(const std::string& path);

}  // namespace irrlu::json
