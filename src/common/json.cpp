#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace irrlu::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Writer::raw(std::string_view s) {
  std::fwrite(s.data(), 1, s.size(), f_);
}

void Writer::value_prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // root value
  Frame& fr = stack_.back();
  IRRLU_CHECK_MSG(fr.array, "json::Writer: object member without a key");
  if (fr.count++ > 0) raw(",");
  if (!fr.compact) {
    raw("\n");
    for (std::size_t i = 0; i < stack_.size(); ++i) raw("  ");
  }
}

void Writer::key(std::string_view k) {
  IRRLU_CHECK_MSG(!stack_.empty() && !stack_.back().array && !after_key_,
                  "json::Writer: key() outside an object");
  Frame& fr = stack_.back();
  if (fr.count++ > 0) raw(",");
  if (!fr.compact) {
    raw("\n");
    for (std::size_t i = 0; i < stack_.size(); ++i) raw("  ");
  }
  raw("\"");
  raw(escape(k));
  raw("\": ");
  after_key_ = true;
}

void Writer::begin_object(bool compact) {
  value_prefix();
  // Nested containers inside a compact container stay compact.
  if (!stack_.empty() && stack_.back().compact) compact = true;
  stack_.push_back({false, compact, 0});
  raw("{");
}

void Writer::end_object() {
  IRRLU_CHECK_MSG(!stack_.empty() && !stack_.back().array && !after_key_,
                  "json::Writer: unbalanced end_object()");
  const Frame fr = stack_.back();
  stack_.pop_back();
  if (!fr.compact && fr.count > 0) {
    raw("\n");
    for (std::size_t i = 0; i < stack_.size(); ++i) raw("  ");
  }
  raw("}");
}

void Writer::begin_array(bool compact) {
  value_prefix();
  if (!stack_.empty() && stack_.back().compact) compact = true;
  stack_.push_back({true, compact, 0});
  raw("[");
}

void Writer::end_array() {
  IRRLU_CHECK_MSG(!stack_.empty() && stack_.back().array,
                  "json::Writer: unbalanced end_array()");
  const Frame fr = stack_.back();
  stack_.pop_back();
  if (!fr.compact && fr.count > 0) {
    raw("\n");
    for (std::size_t i = 0; i < stack_.size(); ++i) raw("  ");
  }
  raw("]");
}

void Writer::string(std::string_view v) {
  value_prefix();
  raw("\"");
  raw(escape(v));
  raw("\"");
}

void Writer::number(double v, const char* fmt) {
  value_prefix();
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf literal
    raw("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  raw(buf);
}

void Writer::number_int(long long v) {
  value_prefix();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  raw(buf);
}

void Writer::boolean(bool v) {
  value_prefix();
  raw(v ? "true" : "false");
}

void Writer::null() {
  value_prefix();
  raw("null");
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : fields)
    if (k == key) return &v;
  return nullptr;
}

double Value::as_number() const {
  IRRLU_CHECK_MSG(type == Type::kNumber, "json: value is not a number");
  return number;
}

long long Value::as_int() const {
  return static_cast<long long>(as_number());
}

const std::string& Value::as_string() const {
  IRRLU_CHECK_MSG(type == Type::kString, "json: value is not a string");
  return str;
}

bool Value::as_bool() const {
  IRRLU_CHECK_MSG(type == Type::kBool, "json: value is not a bool");
  return boolean;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v && v->type == Type::kNumber ? v->number : fallback;
}

std::string Value::string_or(std::string_view key,
                             const std::string& fallback) const {
  const Value* v = find(key);
  return v && v->type == Type::kString ? v->str : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    IRRLU_CHECK_MSG(pos_ == s_.size(),
                    "json: trailing characters at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    IRRLU_CHECK_MSG(pos_ < s_.size(), "json: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    IRRLU_CHECK_MSG(pos_ < s_.size() && s_[pos_] == c,
                    "json: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.type = Value::Type::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = Value::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          IRRLU_CHECK_MSG(pos_ + 4 <= s_.size(),
                          "json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              IRRLU_CHECK_MSG(false, "json: bad \\u escape digit");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by
          // our own writer).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          IRRLU_CHECK_MSG(false, "json: bad escape '\\" << e << "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    IRRLU_CHECK_MSG(pos_ > start, "json: invalid value at offset " << start);
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  IRRLU_CHECK_MSG(f != nullptr, "json: cannot open " << path);
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return parse(text);
}

}  // namespace irrlu::json
