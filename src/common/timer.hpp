// Wall-clock timing for host-side measurements. Simulated-device time is a
// separate concept and lives in gpusim::Timeline.
#pragma once

#include <chrono>

namespace irrlu {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace irrlu
