#include "common/cli.hpp"

#include <cstdlib>

namespace irrlu {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty()
             ? fallback
             : std::atoi(it->second.c_str());
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() || it->second.empty()
             ? fallback
             : std::atof(it->second.c_str());
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes")
    return true;
  return false;
}

}  // namespace irrlu
