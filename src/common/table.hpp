// Plain-text table printer used by the benchmark harnesses to emit
// paper-style rows (one table/figure per binary).
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace irrlu {

/// Accumulates rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
        if (r[c].size() > w[c]) w[c] = r[c].size();
    print_row(os, header_, w);
    std::string rule;
    for (std::size_t c = 0; c < w.size(); ++c)
      rule += std::string(w[c] + (c + 1 < w.size() ? 2 : 0), '-');
    os << rule << "\n";
    for (const auto& r : rows_) print_row(os, r, w);
  }

  static std::string fmt(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

 private:
  template <typename T>
  static std::string to_cell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& w) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(w[c])) << r[c];
      if (c + 1 < r.size()) os << "  ";
    }
    os << "\n";
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace irrlu
