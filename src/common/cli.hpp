// Minimal command-line flag parsing for the example and benchmark drivers.
// Supports "--name value" and "--name=value" plus boolean "--flag".
#pragma once

#include <map>
#include <string>
#include <vector>

namespace irrlu {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace irrlu
