// Error-handling primitives used across the irrlu libraries.
//
// IRRLU_CHECK is an always-on precondition check (throws irrlu::Error); it
// guards API contracts that user code can violate. IRRLU_DEBUG_ASSERT guards
// internal invariants and compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace irrlu {

/// Exception thrown on contract violations in the irrlu libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "irrlu check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace irrlu

#define IRRLU_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::irrlu::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define IRRLU_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream irrlu_os_;                                        \
      irrlu_os_ << msg;                                                    \
      ::irrlu::detail::throw_check_failure(#expr, __FILE__, __LINE__,      \
                                           irrlu_os_.str());               \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define IRRLU_DEBUG_ASSERT(expr) ((void)0)
#else
#define IRRLU_DEBUG_ASSERT(expr) IRRLU_CHECK(expr)
#endif
