#include "irrblas/interleaved.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "lapack/flops.hpp"

namespace irrlu::batch {

namespace {

/// block -> (descriptor, lane offset within it) of a fused stage grid.
struct BlockSpan {
  int desc = 0;
  int off = 0;
};

template <typename Desc>
std::shared_ptr<std::vector<BlockSpan>> grid_of(
    const std::vector<Desc>& descs) {
  auto map = std::make_shared<std::vector<BlockSpan>>();
  for (int di = 0; di < static_cast<int>(descs.size()); ++di)
    for (int off = 0; off < descs[static_cast<std::size_t>(di)].lanes;
         off += kIlvLaneChunk)
      map->push_back({di, off});
  return map;
}

}  // namespace

void ilv_launch(gpusim::Device& dev, gpusim::Stream& stream, const char* name,
                std::vector<IlvOpDesc> descs) {
  auto ds = std::make_shared<std::vector<IlvOpDesc>>(std::move(descs));
  auto map = grid_of(*ds);
  if (map->empty()) return;
  const gpusim::LaunchConfig cfg{name, static_cast<int>(map->size()), 0};
  dev.launch(stream, cfg, [ds, map](gpusim::BlockCtx& ctx) {
    const BlockSpan bs = (*map)[static_cast<std::size_t>(ctx.block())];
    const IlvOpDesc& d = (*ds)[static_cast<std::size_t>(bs.desc)];
    la::mk::ilv::Args a = d.args;
    a.lane0 = d.lane0 + bs.off;
    a.lane1 = std::min(d.lane0 + d.lanes, a.lane0 + kIlvLaneChunk);
    d.kern->fn(*d.kern, a);
    const int nl = a.lane1 - a.lane0;
    ctx.record(d.flops_per_lane * nl, d.bytes_per_lane * nl);
  });
}

template <typename T>
void ilv_pack(gpusim::Device& dev, gpusim::Stream& stream,
              std::vector<IlvPackDescT<T>> descs) {
  auto ds = std::make_shared<std::vector<IlvPackDescT<T>>>(std::move(descs));
  auto map = grid_of(*ds);
  if (map->empty()) return;
  const gpusim::LaunchConfig cfg{"ilv_pack", static_cast<int>(map->size()),
                                 0};
  dev.launch(stream, cfg, [ds, map](gpusim::BlockCtx& ctx) {
    const BlockSpan bs = (*map)[static_cast<std::size_t>(ctx.block())];
    const IlvPackDescT<T>& d = (*ds)[static_cast<std::size_t>(bs.desc)];
    const int l0 = d.lane0 + bs.off;
    const int l1 = std::min(d.lane0 + d.lanes, l0 + kIlvLaneChunk);
    for (int l = l0; l < l1; ++l) {
      const T* s = d.src[l];
      const int lds = d.src_ld[l];
      double mx = 0;
      for (int c = 0; c < d.n; ++c) {
        for (int r = 0; r < d.m; ++r) {
          const T v = s[static_cast<std::ptrdiff_t>(c) * lds + r];
          d.dst.data[(static_cast<std::ptrdiff_t>(c) * d.dst.ld + r) *
                         d.dst.batch +
                     l] = v;
          // Same reduction expression and traversal order as the strided
          // mf_front_norm kernel (the max is order-independent anyway).
          mx = std::max(mx, std::abs(static_cast<double>(v)));
        }
      }
      if (d.absmax != nullptr && d.m > 0 && d.n > 0) d.absmax[l] = mx;
    }
    const int nl = l1 - l0;
    const double elems = static_cast<double>(d.m) * d.n;
    ctx.record(d.absmax != nullptr ? elems * nl : 0.0,
               2.0 * elems * sizeof(T) * nl);
  });
}

template <typename T>
void ilv_unpack(gpusim::Device& dev, gpusim::Stream& stream,
                std::vector<IlvPackDescT<T>> descs) {
  auto ds = std::make_shared<std::vector<IlvPackDescT<T>>>(std::move(descs));
  auto map = grid_of(*ds);
  if (map->empty()) return;
  const gpusim::LaunchConfig cfg{"ilv_unpack", static_cast<int>(map->size()),
                                 0};
  dev.launch(stream, cfg, [ds, map](gpusim::BlockCtx& ctx) {
    const BlockSpan bs = (*map)[static_cast<std::size_t>(ctx.block())];
    const IlvPackDescT<T>& d = (*ds)[static_cast<std::size_t>(bs.desc)];
    const int l0 = d.lane0 + bs.off;
    const int l1 = std::min(d.lane0 + d.lanes, l0 + kIlvLaneChunk);
    for (int l = l0; l < l1; ++l) {
      T* s = d.src[l];
      const int lds = d.src_ld[l];
      double mx = 0;
      for (int c = 0; c < d.n; ++c) {
        for (int r = 0; r < d.m; ++r) {
          const T v = d.dst.data[(static_cast<std::ptrdiff_t>(c) *
                                      d.dst.ld +
                                  r) *
                                     d.dst.batch +
                                 l];
          s[static_cast<std::ptrdiff_t>(c) * lds + r] = v;
          mx = std::max(mx, std::abs(static_cast<double>(v)));
        }
      }
      if (d.absmax != nullptr && d.m > 0 && d.n > 0) d.absmax[l] = mx;
    }
    const int nl = l1 - l0;
    const double elems = static_cast<double>(d.m) * d.n;
    ctx.record(d.absmax != nullptr ? elems * nl : 0.0,
               2.0 * elems * sizeof(T) * nl);
  });
}

template <typename T>
void ilv_laswp(gpusim::Device& dev, gpusim::Stream& stream,
               std::vector<IlvLaswpDescT<T>> descs) {
  auto ds = std::make_shared<std::vector<IlvLaswpDescT<T>>>(std::move(descs));
  auto map = grid_of(*ds);
  if (map->empty()) return;
  const gpusim::LaunchConfig cfg{"ilv_laswp", static_cast<int>(map->size()),
                                 0};
  dev.launch(stream, cfg, [ds, map](gpusim::BlockCtx& ctx) {
    const BlockSpan bs = (*map)[static_cast<std::size_t>(ctx.block())];
    const IlvLaswpDescT<T>& d = (*ds)[static_cast<std::size_t>(bs.desc)];
    const int l0 = d.lane0 + bs.off;
    const int l1 = std::min(d.lane0 + d.lanes, l0 + kIlvLaneChunk);
    long swaps = 0;
    for (int l = l0; l < l1; ++l) {
      const int* piv = d.ipiv[l];
      for (int r = 0; r < d.rows; ++r) {
        const int p = piv[r];
        if (p == r) continue;
        ++swaps;
        for (int c = 0; c < d.width; ++c) {
          std::swap(d.view.data[(static_cast<std::ptrdiff_t>(c) * d.view.ld +
                                 r) *
                                    d.view.batch +
                                l],
                    d.view.data[(static_cast<std::ptrdiff_t>(c) * d.view.ld +
                                 p) *
                                    d.view.batch +
                                l]);
        }
      }
    }
    // Coalesced swap traffic: 4 accesses per swapped element, no strided
    // row-access penalty (contrast irr_laswp_range's 64 / sizeof(T)
    // factor) — the layout's headline saving.
    ctx.record(0.0,
               static_cast<double>(swaps) * 4.0 * d.width * sizeof(T));
  });
}

template <typename T>
void irr_getf2_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                   const Dispatch& disp, const IlvViewT<T>& a, int m, int n,
                   int lanes, int* const* ipiv, int* info, double tau,
                   const double* anorm, int* boost) {
  if (lanes <= 0) return;
  IlvOpDesc d;
  d.kern = disp.resolve(getf2_key(m, n, kMicroPrecOf<T>));
  d.args.batch = a.batch;
  d.args.c = a.data;
  d.args.ldc = a.ld;
  d.args.ipiv = ipiv;
  d.args.info = info;
  d.args.tau = tau;
  d.args.anorm = anorm;
  d.args.boost = boost;
  d.lanes = lanes;
  d.flops_per_lane = la::getrf_flops(m, n) * la::flop_weight<T>;
  d.bytes_per_lane = 2.0 * m * n * sizeof(T) +
                     static_cast<double>(std::min(m, n)) * sizeof(int);
  ilv_launch(dev, stream, "ilv_getf2", {d});
}

template <typename T>
void irr_gemm_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                  const Dispatch& disp, int m, int n, int k, double alpha,
                  const IlvViewT<T>& a, const IlvViewT<T>& b, double beta,
                  const IlvViewT<T>& c, int lanes) {
  if (lanes <= 0) return;
  IRRLU_CHECK(a.batch == c.batch && b.batch == c.batch);
  IlvOpDesc d;
  d.kern = disp.resolve(gemm_key(m, n, k, kMicroPrecOf<T>));
  d.args.batch = c.batch;
  d.args.alpha = alpha;
  d.args.beta = beta;
  d.args.a = a.data;
  d.args.lda = a.ld;
  d.args.b = b.data;
  d.args.ldb = b.ld;
  d.args.c = c.data;
  d.args.ldc = c.ld;
  d.lanes = lanes;
  d.flops_per_lane = la::gemm_flops(m, n, k) * la::flop_weight<T>;
  d.bytes_per_lane =
      (static_cast<double>(m + n) * k + 2.0 * m * n) * sizeof(T);
  ilv_launch(dev, stream, "ilv_gemm", {d});
}

template <typename T>
void irr_trsm_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                  const Dispatch& disp, la::Side side, la::Uplo uplo,
                  la::Diag diag, int m, int n, double alpha,
                  const IlvViewT<T>& t, const IlvViewT<T>& b, int lanes) {
  if (lanes <= 0) return;
  IRRLU_CHECK(t.batch == b.batch);
  const bool left = side == la::Side::Left;
  const int tri = left ? m : n;
  IlvOpDesc d;
  d.kern = disp.resolve(trsm_key(left, uplo == la::Uplo::Lower,
                                 diag == la::Diag::Unit, m, n,
                                 kMicroPrecOf<T>));
  d.args.batch = b.batch;
  d.args.alpha = alpha;
  d.args.a = t.data;
  d.args.lda = t.ld;
  d.args.c = b.data;
  d.args.ldc = b.ld;
  d.lanes = lanes;
  d.flops_per_lane =
      la::trsm_flops(tri, left ? n : m) * la::flop_weight<T>;
  d.bytes_per_lane = (0.5 * tri * tri + 2.0 * m * n) * sizeof(T);
  ilv_launch(dev, stream, "ilv_trsm", {d});
}

#define IRRLU_INSTANTIATE_ILV(T)                                             \
  template void ilv_pack<T>(gpusim::Device&, gpusim::Stream&,                \
                            std::vector<IlvPackDescT<T>>);                   \
  template void ilv_unpack<T>(gpusim::Device&, gpusim::Stream&,              \
                              std::vector<IlvPackDescT<T>>);                 \
  template void ilv_laswp<T>(gpusim::Device&, gpusim::Stream&,               \
                             std::vector<IlvLaswpDescT<T>>);                 \
  template void irr_getf2_ilv<T>(gpusim::Device&, gpusim::Stream&,           \
                                 const Dispatch&, const IlvViewT<T>&, int,   \
                                 int, int, int* const*, int*, double,        \
                                 const double*, int*);                       \
  template void irr_gemm_ilv<T>(gpusim::Device&, gpusim::Stream&,            \
                                const Dispatch&, int, int, int, double,      \
                                const IlvViewT<T>&, const IlvViewT<T>&,      \
                                double, const IlvViewT<T>&, int);            \
  template void irr_trsm_ilv<T>(gpusim::Device&, gpusim::Stream&,            \
                                const Dispatch&, la::Side, la::Uplo,         \
                                la::Diag, int, int, double,                  \
                                const IlvViewT<T>&, const IlvViewT<T>&,      \
                                int);

IRRLU_INSTANTIATE_ILV(double)
IRRLU_INSTANTIATE_ILV(float)

#undef IRRLU_INSTANTIATE_ILV

}  // namespace irrlu::batch
