// Launch layer for the interleaved (SoA) batch layout: packs strided
// fronts into per-size-class SoA buffers, runs the dispatch-cached
// batch-axis-vectorized kernels (lapack/microkernel_ilv.hpp) over them,
// and unpacks the results — with honest simulated-cost accounting.
// DESIGN.md §12.
//
// The launch grid is lanes-first: every descriptor contributes
// ceil(lanes / kIlvLaneChunk) blocks, and one launch may span several
// descriptors (several size classes), so a level's worth of heterogeneous
// buckets still costs ONE launch per pipeline stage. Each block touches a
// contiguous lane chunk of one class — the coalesced access pattern the
// device model's per-block bandwidth term rewards, and the reason the
// interleaved row-swap traffic below drops the strided path's row-access
// penalty factor.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "irrblas/dispatch.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/types.hpp"

namespace irrlu::batch {

/// Lanes per simulated block (= the microkernels' vector grain).
inline constexpr int kIlvLaneChunk = 8;

/// One kernel invocation over a lane range of one size class, within a
/// (possibly multi-class) fused stage launch. `args.lane0/lane1` are
/// filled per block by the launcher; everything else is caller-set.
struct IlvOpDesc {
  const la::mk::ilv::Kernel* kern = nullptr;
  la::mk::ilv::Args args;
  int lane0 = 0;  ///< first lane of this op within the class buffers
  int lanes = 0;  ///< lanes processed
  double flops_per_lane = 0;
  double bytes_per_lane = 0;
};

/// Launches one fused stage: grid = sum over descs of ceil(lanes/chunk);
/// each block runs its desc's kernel on its lane chunk and records
/// per-lane work. Descs with zero lanes contribute nothing; an all-empty
/// stage skips the launch entirely.
void ilv_launch(gpusim::Device& dev, gpusim::Stream& stream, const char* name,
                std::vector<IlvOpDesc> descs);

/// One size class of a pack/unpack stage: `lanes` strided matrices
/// (src[lane] with leading dimension src_ld[lane], both indexed by the
/// absolute lane id) against the m x n SoA window `dst`. When `absmax`
/// is set, the sweep also writes max |a_ij| per lane — the boost-norm /
/// growth extremum fused into the copy (order-independent, so it equals
/// the strided mf_front_norm/mf_front_growth value bitwise; the extremum
/// stays double even for float classes, like every anorm vector).
template <typename T>
struct IlvPackDescT {
  IlvViewT<T> dst;
  int m = 0, n = 0;
  int lane0 = 0, lanes = 0;
  T* const* src = nullptr;
  const int* src_ld = nullptr;
  double* absmax = nullptr;
};

using IlvPackDesc = IlvPackDescT<double>;

/// Strided -> SoA gather (+ optional per-lane max-magnitude).
template <typename T>
void ilv_pack(gpusim::Device& dev, gpusim::Stream& stream,
              std::vector<IlvPackDescT<T>> descs);
/// SoA -> strided scatter (+ optional per-lane max-magnitude).
template <typename T>
void ilv_unpack(gpusim::Device& dev, gpusim::Stream& stream,
                std::vector<IlvPackDescT<T>> descs);

// Non-template overloads so braced-init call sites keep deducing double.
inline void ilv_pack(gpusim::Device& dev, gpusim::Stream& stream,
                     std::vector<IlvPackDesc> descs) {
  ilv_pack<double>(dev, stream, std::move(descs));
}
inline void ilv_unpack(gpusim::Device& dev, gpusim::Stream& stream,
                       std::vector<IlvPackDesc> descs) {
  ilv_unpack<double>(dev, stream, std::move(descs));
}

/// One size class of a row-interchange stage: applies ipiv[lane][0..rows)
/// forward (row r swaps with row ipiv[lane][r]) to `width` columns of the
/// class window `view`. Bytes are counted per actual swap, coalesced:
/// swaps * 4 accesses * width * sizeof(T) — without the
/// (64 / sizeof(T)) row-access penalty the strided irr_laswp_range pays,
/// because a lane sweep is unit stride in this layout.
template <typename T>
struct IlvLaswpDescT {
  IlvViewT<T> view;
  int rows = 0, width = 0;
  int lane0 = 0, lanes = 0;
  int* const* ipiv = nullptr;
};

using IlvLaswpDesc = IlvLaswpDescT<double>;

template <typename T>
void ilv_laswp(gpusim::Device& dev, gpusim::Stream& stream,
               std::vector<IlvLaswpDescT<T>> descs);

inline void ilv_laswp(gpusim::Device& dev, gpusim::Stream& stream,
                      std::vector<IlvLaswpDesc> descs) {
  ilv_laswp<double>(dev, stream, std::move(descs));
}

// ---------------------------------------------------------------------------
// Single-class convenience wrappers (tests, benchmarks): resolve through
// the dispatch handle and issue one single-desc launch.
// ---------------------------------------------------------------------------

/// LU with partial pivoting of every lane's m x n matrix in `a`;
/// per-lane ipiv/info (and optional boosting) as in irr_getf2_fused.
template <typename T>
void irr_getf2_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                   const Dispatch& disp, const IlvViewT<T>& a, int m, int n,
                   int lanes, int* const* ipiv, int* info, double tau = 0.0,
                   const double* anorm = nullptr, int* boost = nullptr);

/// C = alpha * A * B + beta * C per lane (Trans::No both sides).
template <typename T>
void irr_gemm_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                  const Dispatch& disp, int m, int n, int k, double alpha,
                  const IlvViewT<T>& a, const IlvViewT<T>& b, double beta,
                  const IlvViewT<T>& c, int lanes);

/// Triangular solve per lane (Trans::No): op(T) X = alpha B (Left) or
/// X op(T) = alpha B (Right), B overwritten, B is m x n.
template <typename T>
void irr_trsm_ilv(gpusim::Device& dev, gpusim::Stream& stream,
                  const Dispatch& disp, la::Side side, la::Uplo uplo,
                  la::Diag diag, int m, int n, double alpha,
                  const IlvViewT<T>& t, const IlvViewT<T>& b, int lanes);

}  // namespace irrlu::batch
