// Dynamic Compute-Workload Inference (DCWI) — the paper's §IV-B.
//
// Every irregular-batch kernel is described to the device in terms of the
// *largest* problem in the batch (the "required dimensions" m, n, k), plus
// per-matrix *local dimensions* (m_vec, n_vec, k_vec — the operation extents
// of each problem at zero offset, never mutated during an algorithm) and
// scalar *pointer offsets* (Ai, Aj, ...) shared by the whole batch.
//
// DCWI runs at the top of each kernel (per matrix) and infers the actual
// workload: full, partial, or none. The rule, uniformly:
//
//     eff_dim = clamp(min(required_dim, local_dim - offset), 0, inf)
//
// where `offset` is the offset aligned with that dimension under the
// kernel's trans/side semantics (§IV-B: "for C = A x B the offsets (Ai, Aj)
// are compared against (m, k); for C = A^T x B, against (k, m)"). When two
// operand offsets align with the same dimension (e.g. Ai and Ci with the
// m-dimension of a NoTrans GEMM) the larger offset governs. An effective
// dimension of zero means the block performs no work and touches no memory.
#pragma once

#include <algorithm>

#include "lapack/types.hpp"

namespace irrlu::batch {

inline int dcwi_clamp(int required, int local, int offset) {
  return std::max(0, std::min(required, local - offset));
}

/// Effective workload of one GEMM in a non-uniform batch.
struct GemmWork {
  int m = 0, n = 0, k = 0;
  bool none() const { return m <= 0 || n <= 0; }
  bool inner_empty() const { return k <= 0; }
};

/// DCWI for C(Ci:,Cj:) = alpha op(A)(..) op(B)(..) + beta C(..), problem id
/// with local dims (m_loc, n_loc, k_loc).
inline GemmWork dcwi_gemm(la::Trans transA, la::Trans transB, int m, int n,
                          int k, int Ai, int Aj, int Bi, int Bj, int Ci,
                          int Cj, int m_loc, int n_loc, int k_loc) {
  const int a_m_off = transA == la::Trans::No ? Ai : Aj;
  const int a_k_off = transA == la::Trans::No ? Aj : Ai;
  const int b_k_off = transB == la::Trans::No ? Bi : Bj;
  const int b_n_off = transB == la::Trans::No ? Bj : Bi;
  GemmWork w;
  w.m = dcwi_clamp(m, m_loc, std::max(a_m_off, Ci));
  w.n = dcwi_clamp(n, n_loc, std::max(b_n_off, Cj));
  w.k = dcwi_clamp(k, k_loc, std::max(a_k_off, b_k_off));
  return w;
}

/// Effective workload of one triangular solve in a non-uniform batch.
struct TrsmWork {
  int m = 0, n = 0;  ///< rows and columns of the effective B block
  bool none() const { return m <= 0 || n <= 0; }
};

/// DCWI for op(T) X = alpha B (Side::Left) or X op(T) = alpha B
/// (Side::Right); T's offsets (Ti, Tj) align with the triangle dimension
/// (m for Left, n for Right) and must not disagree with B's offset — the
/// larger governs.
inline TrsmWork dcwi_trsm(la::Side side, int m, int n, int Ti, int Tj,
                          int Bi, int Bj, int m_loc, int n_loc) {
  const int t_off = std::max(Ti, Tj);
  TrsmWork w;
  if (side == la::Side::Left) {
    w.m = dcwi_clamp(m, m_loc, std::max(t_off, Bi));
    w.n = dcwi_clamp(n, n_loc, Bj);
  } else {
    w.m = dcwi_clamp(m, m_loc, Bi);
    w.n = dcwi_clamp(n, n_loc, std::max(t_off, Bj));
  }
  return w;
}

/// Effective workload of one LU panel / factorization step.
struct LuWork {
  int m = 0;  ///< rows remaining at this offset
  int n = 0;  ///< columns remaining at this offset
  bool none() const { return m <= 0 || n <= 0; }
  int kmin() const { return std::min(m, n); }
};

inline LuWork dcwi_lu(int m, int n, int Ai, int Aj, int m_loc, int n_loc) {
  LuWork w;
  w.m = dcwi_clamp(m, m_loc, Ai);
  w.n = dcwi_clamp(n, n_loc, Aj);
  return w;
}

/// Effective widths for the row-interchange step (irrLASWP): the paper's
/// Fig. 8 — w_l columns to the left of the panel and w_r to the right, both
/// different for every matrix. `j` is the panel's first column, `jb` its
/// width; pivots act on rows [j, j + pivot-rows). Rows exist only if the
/// matrix still has a panel at this stage.
struct LaswpWork {
  int wl = 0;       ///< columns [0, wl) to the left of the panel
  int wr_off = 0;   ///< first column of the right part
  int wr = 0;       ///< number of columns right of the panel
  int rows = 0;     ///< pivot rows of this matrix at this stage
  bool none() const { return rows <= 0; }
};

inline LaswpWork dcwi_laswp(int j, int jb, int m_loc, int n_loc) {
  LaswpWork w;
  const int kmin = std::min(m_loc, n_loc);
  w.rows = std::max(0, std::min(jb, kmin - j));
  if (w.rows == 0) return w;
  w.wl = std::min(j, n_loc);
  w.wr_off = j + jb;
  w.wr = std::max(0, n_loc - (j + jb));
  return w;
}

}  // namespace irrlu::batch
