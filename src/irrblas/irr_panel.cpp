// Panel decomposition (paper §IV-E): the fused shared-memory kernel
// irrGETF2 and the column-wise fallback path (irrIAMAX + irrSWAP + irrSCAL
// + irrGER, four kernel launches per column).
//
// The fused kernel is used whenever the *estimated* largest panel fits the
// device's shared memory; the estimate assumes all panels share the fixed
// width nb, so the estimated footprint is nb x (Mmax - j) elements. A GPU
// with a small shared memory (MI100's 64 KB LDS) falls back to the slow
// column-wise path much earlier than one with a large shared memory
// (A100's 164 KB per block) — the architectural effect the paper calls out.
#include <algorithm>
#include <complex>
#include <cmath>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"

namespace irrlu::batch {

namespace {

/// Effective panel of matrix `id` at offsets (Ai, Aj): `rows` x `cols` is
/// the full panel block (columns run to the matrix edge within the panel
/// range, so that a wide matrix's trailing columns inside the panel get the
/// eliminations applied, exactly as LAPACK's GETF2 does for m < n);
/// `kpiv = min(rows, cols)` columns actually get factored and pivoted.
struct PanelWork {
  int rows = 0, cols = 0;
  bool none() const { return rows <= 0 || cols <= 0; }
  int kpiv() const { return rows < cols ? rows : cols; }
};

PanelWork dcwi_panel(int m, int jb, int Ai, int Aj, int m_loc, int n_loc) {
  PanelWork w;
  w.rows = dcwi_clamp(m, m_loc, Ai);
  w.cols = dcwi_clamp(jb, n_loc, Aj);
  return w;
}

}  // namespace

template <typename T>
void irr_getf2_fused(gpusim::Device& dev, gpusim::Stream& stream, int m,
                     int jb, T* const* dA_array, const int* ldda, int Ai,
                     int Aj, const int* m_vec, const int* n_vec,
                     int* const* ipiv_array, int* info_array,
                     int batch_size, const PivotBoost& boost) {
  if (batch_size <= 0 || m <= 0 || jb <= 0) return;
  const gpusim::LaunchConfig cfg{"irr_getf2_fused", batch_size,
                                 irr_getf2_smem_bytes<T>(m, jb)};
  const PivotBoost bst = boost;  // capture by value: kernels are async

  dev.launch(stream, cfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const PanelWork w = dcwi_panel(m, jb, Ai, Aj, m_vec[id], n_vec[id]);
    if (w.none()) return;
    const int lda = ldda[id];
    T* A = dA_array[id] + static_cast<std::ptrdiff_t>(Aj) * lda + Ai;

    // Unblocked right-looking LU with partial pivoting, in place; getf2
    // is ld-independent so this is bitwise the former stage-in-smem /
    // factor / copy-back sequence. The LaunchConfig still reserves the
    // panel's shared-memory footprint, so occupancy and simulated time
    // are unchanged.
    int* spiv = ctx.smem_alloc<int>(static_cast<std::size_t>(w.cols));
    const double thr = bst.active() ? bst.tau * bst.anorm_vec[id] : 0.0;
    int* nboost = bst.boost_vec != nullptr ? &bst.boost_vec[id] : nullptr;
    const int info = la::getf2(w.rows, w.cols, A, lda, spiv, thr, nboost);
    if (info != 0 && info_array[id] == 0) info_array[id] = Aj + info;

    // Publish absolute pivot rows.
    for (int j = 0; j < w.kpiv(); ++j) ipiv_array[id][Aj + j] = Ai + spiv[j];

    // One read + one write of the panel; LU work done entirely in smem.
    ctx.record(la::getrf_flops(w.rows, w.cols) * la::flop_weight<T>,
               2.0 * w.rows * w.cols * sizeof(T) + w.cols * sizeof(int));
  });
}

template <typename T>
void irr_panel_columnwise(gpusim::Device& dev, gpusim::Stream& stream, int m,
                          int jb, T* const* dA_array, const int* ldda, int Ai,
                          int Aj, const int* m_vec, const int* n_vec,
                          int* const* ipiv_array, int* info_array,
                          int batch_size, const PivotBoost& boost) {
  if (batch_size <= 0 || m <= 0 || jb <= 0) return;
  // Strided row access wastes a cache line per element (column-major).
  const double row_penalty = 64.0 / sizeof(T);
  const PivotBoost bst = boost;  // capture by value: kernels are async

  for (int c = 0; c < jb; ++c) {
    // (1) irrIAMAX: pivot search in the current subcolumn.
    dev.launch(stream, {"irr_iamax", batch_size, 0},
               [=](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const PanelWork w = dcwi_panel(m, jb, Ai, Aj, m_vec[id], n_vec[id]);
      if (w.none() || c >= w.kpiv()) return;
      const int lda = ldda[id];
      const T* col = dA_array[id] +
                     static_cast<std::ptrdiff_t>(Aj + c) * lda + Ai;
      const int p = c + la::iamax(w.rows - c, col + c, 1);
      ipiv_array[id][Aj + c] = Ai + p;
      if (col[p] == T{} && info_array[id] == 0) info_array[id] = Aj + c + 1;
      ctx.record(0.0, static_cast<double>(w.rows - c) * sizeof(T));
    });

    // (2) irrSWAP: bring the pivot row to the diagonal (panel width only;
    // the left/right widths are handled later by irrLASWP).
    dev.launch(stream, {"irr_swap", batch_size, 0},
               [=](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const PanelWork w = dcwi_panel(m, jb, Ai, Aj, m_vec[id], n_vec[id]);
      if (w.none() || c >= w.kpiv()) return;
      const int lda = ldda[id];
      T* A = dA_array[id] + static_cast<std::ptrdiff_t>(Aj) * lda + Ai;
      const int p = ipiv_array[id][Aj + c] - Ai;
      if (p != c) {
        la::swap(w.cols, A + c, lda, A + p, lda);
        ctx.record(0.0, 2.0 * w.cols * row_penalty * sizeof(T));
      }
    });

    // (3) irrSCAL: scale the subdiagonal of the current column.
    dev.launch(stream, {"irr_scal", batch_size, 0},
               [=](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const PanelWork w = dcwi_panel(m, jb, Ai, Aj, m_vec[id], n_vec[id]);
      if (w.none() || c >= w.kpiv()) return;
      const int lda = ldda[id];
      T* col = dA_array[id] + static_cast<std::ptrdiff_t>(Aj + c) * lda + Ai;
      // Small-pivot recovery: the pivot sits on the diagonal after
      // irr_swap; boost it in place so the scaling below (and all later
      // columns reading this entry as part of U) see the perturbed value.
      // The exact-zero info was already recorded by irr_iamax.
      if (bst.active()) {
        const double thr = bst.tau * bst.anorm_vec[id];
        if (std::abs(col[c]) < thr) {
          col[c] = la::boosted_pivot(col[c], thr);
          if (bst.boost_vec != nullptr) ++bst.boost_vec[id];
        }
      }
      const T piv = col[c];
      if (piv != T{} && c + 1 < w.rows)
        la::scal(w.rows - c - 1, T(1) / piv, col + c + 1, 1);
      ctx.record(static_cast<double>(std::max(0, w.rows - c - 1)) *
                     la::flop_weight<T>,
                 2.0 * std::max(0, w.rows - c - 1) * sizeof(T));
    });

    // (4) irrGER: rank-1 update of the trailing subpanel.
    dev.launch(stream, {"irr_ger", batch_size, 0},
               [=](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const PanelWork w = dcwi_panel(m, jb, Ai, Aj, m_vec[id], n_vec[id]);
      if (w.none() || c >= w.kpiv()) return;
      const int gm = w.rows - c - 1, gn = w.cols - c - 1;
      if (gm <= 0 || gn <= 0) return;
      const int lda = ldda[id];
      T* A = dA_array[id] + static_cast<std::ptrdiff_t>(Aj) * lda + Ai;
      la::ger(gm, gn, T(-1), A + static_cast<std::ptrdiff_t>(c) * lda + c + 1,
              1, A + static_cast<std::ptrdiff_t>(c + 1) * lda + c, lda,
              A + static_cast<std::ptrdiff_t>(c + 1) * lda + c + 1, lda);
      ctx.record(la::ger_flops(gm, gn) * la::flop_weight<T>,
                 (2.0 * gm * gn + gm + gn) * sizeof(T));
    });
  }
}

#define IRRLU_INSTANTIATE_PANEL(T)                                           \
  template void irr_getf2_fused<T>(gpusim::Device&, gpusim::Stream&, int,    \
                                   int, T* const*, const int*, int, int,     \
                                   const int*, const int*, int* const*,      \
                                   int*, int, const PivotBoost&);            \
  template void irr_panel_columnwise<T>(gpusim::Device&, gpusim::Stream&,    \
                                        int, int, T* const*, const int*,     \
                                        int, int, const int*, const int*,    \
                                        int* const*, int*, int,              \
                                        const PivotBoost&);

IRRLU_INSTANTIATE_PANEL(float)
IRRLU_INSTANTIATE_PANEL(double)
IRRLU_INSTANTIATE_PANEL(std::complex<double>)

#undef IRRLU_INSTANTIATE_PANEL

}  // namespace irrlu::batch
