// VBatch: host-side owner of a non-uniform batch of column-major matrices
// living in (simulated) device memory, together with the device-resident
// pointer and dimension arrays the flat irregular-batch interface consumes.
//
// This is a convenience container: the irr* kernels themselves take the flat
// argument lists of the paper's Figure 3 (pointer arrays + lda vectors +
// local-dimension vectors + offsets) and can be driven from any storage.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/matrix_view.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"

namespace irrlu::batch {

template <typename T>
class VBatch {
 public:
  /// Allocates a batch with per-matrix sizes (m_vec[i] x n_vec[i]); each
  /// matrix is stored with ld == m_vec[i] inside one contiguous device
  /// buffer. Zero-sized matrices are legal.
  VBatch(gpusim::Device& dev, std::vector<int> m_vec, std::vector<int> n_vec)
      : dev_(&dev), m_(std::move(m_vec)), n_(std::move(n_vec)) {
    IRRLU_CHECK(m_.size() == n_.size());
    const int bs = static_cast<int>(m_.size());
    std::size_t total = 0;
    offsets_.resize(m_.size());
    for (int i = 0; i < bs; ++i) {
      IRRLU_CHECK(m_[i] >= 0 && n_[i] >= 0);
      offsets_[i] = total;
      total += static_cast<std::size_t>(m_[i]) * n_[i];
    }
    storage_ = dev.alloc<T>(total);
    ptrs_ = dev.alloc<T*>(m_.size());
    lda_ = dev.alloc<int>(m_.size());
    dm_ = dev.alloc<int>(m_.size());
    dn_ = dev.alloc<int>(m_.size());
    for (int i = 0; i < bs; ++i) {
      ptrs_[i] = storage_.data() + offsets_[i];
      lda_[i] = m_[i] > 0 ? m_[i] : 1;
      dm_[i] = m_[i];
      dn_[i] = n_[i];
    }
  }

  /// Square batch.
  VBatch(gpusim::Device& dev, const std::vector<int>& n_vec)
      : VBatch(dev, n_vec, n_vec) {}

  int batch_size() const { return static_cast<int>(m_.size()); }

  /// Device array of matrix base pointers (the `Aarray` of the interface).
  T* const* ptrs() const { return ptrs_.data(); }
  /// Device array of leading dimensions.
  const int* lda() const { return lda_.data(); }
  /// Device arrays of local dimensions.
  const int* m_vec() const { return dm_.data(); }
  const int* n_vec() const { return dn_.data(); }

  int m_of(int i) const { return m_[i]; }
  int n_of(int i) const { return n_[i]; }

  int max_m() const { return max_of(m_); }
  int max_n() const { return max_of(n_); }
  /// max_i min(m_i, n_i): the factorization depth of the largest workload.
  int max_min_mn() const {
    int r = 0;
    for (std::size_t i = 0; i < m_.size(); ++i)
      r = std::max(r, std::min(m_[i], n_[i]));
    return r;
  }

  /// Host-side view of matrix i (device memory is host-visible in the
  /// simulator; used by tests and verification only).
  MatrixView<T> view(int i) {
    return MatrixView<T>(ptrs_[i], m_[i], n_[i], lda_[i]);
  }
  ConstMatrixView<T> view(int i) const {
    return ConstMatrixView<T>(ptrs_[i], m_[i], n_[i], lda_[i]);
  }

  /// Fills every matrix with uniform random entries.
  void fill_uniform(Rng& rng, T lo = T(-1), T hi = T(1)) {
    for (int i = 0; i < batch_size(); ++i) rng.fill_uniform(view(i), lo, hi);
  }

  /// Copies matrix contents (sizes must match).
  void copy_from(const VBatch& other) {
    IRRLU_CHECK(batch_size() == other.batch_size());
    for (int i = 0; i < batch_size(); ++i) {
      IRRLU_CHECK(m_[i] == other.m_[i] && n_[i] == other.n_[i]);
      auto dst = view(i);
      auto src = other.view(i);
      for (int j = 0; j < dst.cols(); ++j)
        for (int r = 0; r < dst.rows(); ++r) dst(r, j) = src(r, j);
    }
  }

  gpusim::Device& device() const { return *dev_; }

 private:
  static int max_of(const std::vector<int>& v) {
    int r = 0;
    for (int x : v) r = std::max(r, x);
    return r;
  }

  gpusim::Device* dev_;
  std::vector<int> m_, n_;
  std::vector<std::size_t> offsets_;
  gpusim::DeviceBuffer<T> storage_;
  gpusim::DeviceBuffer<T*> ptrs_;
  gpusim::DeviceBuffer<int> lda_, dm_, dn_;
};

/// Non-owning view of an interleaved (SoA) size class: element (r, c) of
/// lane (matrix) i sits at data[(c*ld + r)*batch + i], so a sweep over
/// lanes is unit stride — coalesced on the simulated device, vectorizable
/// on the host (DESIGN.md §12). `batch` is the lane stride, which stays
/// the full class size even for sub-views. T is the lane element type
/// (double or float — the mixed-precision fronts route float classes).
template <typename T>
struct IlvViewT {
  T* data = nullptr;
  int ld = 0;     ///< allocated rows per column (the class m)
  int batch = 0;  ///< lane stride
  /// Base pointer of the (r0, c0) submatrix, lane 0.
  T* sub(int r0, int c0) const {
    return data + (static_cast<std::ptrdiff_t>(c0) * ld + r0) * batch;
  }
  IlvViewT subview(int r0, int c0) const { return {sub(r0, c0), ld, batch}; }
};

using IlvView = IlvViewT<double>;

/// Owner of one *uniform* interleaved size class: `batch` matrices of
/// identical shape m x n in a single SoA device buffer (layout above).
/// Contrast VBatch: that one holds a non-uniform batch as consecutive
/// column-major matrices; this one holds a same-shape class transposed
/// batch-innermost, the storage mode the dispatch-cached leaf kernels
/// (irrblas/interleaved.hpp) consume.
template <typename T>
class InterleavedBatch {
 public:
  InterleavedBatch(gpusim::Device& dev, int m, int n, int batch)
      : m_(m), n_(n), batch_(batch) {
    IRRLU_CHECK(m >= 0 && n >= 0 && batch >= 0);
    storage_ = dev.alloc<T>(static_cast<std::size_t>(m) * n * batch);
  }

  int m() const { return m_; }
  int n() const { return n_; }
  int batch_size() const { return batch_; }
  T* data() const { return storage_.data(); }

  /// Element (r, c) of lane i (host-visible, tests and verification).
  T& at(int r, int c, int i) const {
    IRRLU_DEBUG_ASSERT(r >= 0 && r < m_ && c >= 0 && c < n_ && i >= 0 &&
                       i < batch_);
    return storage_[(static_cast<std::size_t>(c) * m_ + r) * batch_ + i];
  }

  /// Kernel-facing view (dispatch keys carry the matching precision).
  IlvViewT<T> view() const {
    static_assert(std::is_same_v<T, double> || std::is_same_v<T, float>,
                  "interleaved kernels operate on double or float batches");
    return IlvViewT<T>{storage_.data(), m_, batch_};
  }

 private:
  int m_, n_, batch_;
  gpusim::DeviceBuffer<T> storage_;
};

/// Per-matrix scalar-factor storage (tau for QR): tau_array[i] points to
/// min(m_i, n_i) elements.
template <typename T>
class TauBatch {
 public:
  TauBatch(gpusim::Device& dev, const std::vector<int>& m_vec,
           const std::vector<int>& n_vec) {
    IRRLU_CHECK(m_vec.size() == n_vec.size());
    std::size_t total = 0;
    std::vector<std::size_t> off(m_vec.size());
    for (std::size_t i = 0; i < m_vec.size(); ++i) {
      off[i] = total;
      total += static_cast<std::size_t>(
          std::max(0, std::min(m_vec[i], n_vec[i])));
    }
    storage_ = dev.alloc<T>(total);
    ptrs_ = dev.alloc<T*>(m_vec.size());
    for (std::size_t i = 0; i < m_vec.size(); ++i)
      ptrs_[i] = storage_.data() + off[i];
  }

  T* const* ptrs() const { return ptrs_.data(); }
  const T* tau_of(int i) const { return ptrs_[i]; }

 private:
  gpusim::DeviceBuffer<T> storage_;
  gpusim::DeviceBuffer<T*> ptrs_;
};

/// Per-matrix pivot storage for a batched LU: ipiv_array[i] points to
/// min(m_i, n_i) ints; info_array[i] receives the LAPACK-style status.
class PivotBatch {
 public:
  PivotBatch(gpusim::Device& dev, const std::vector<int>& m_vec,
             const std::vector<int>& n_vec) {
    IRRLU_CHECK(m_vec.size() == n_vec.size());
    std::size_t total = 0;
    std::vector<std::size_t> off(m_vec.size());
    for (std::size_t i = 0; i < m_vec.size(); ++i) {
      off[i] = total;
      total += static_cast<std::size_t>(
          std::max(0, std::min(m_vec[i], n_vec[i])));
    }
    storage_ = dev.alloc<int>(total);
    ptrs_ = dev.alloc<int*>(m_vec.size());
    info_ = dev.alloc<int>(m_vec.size());
    for (std::size_t i = 0; i < m_vec.size(); ++i) {
      ptrs_[i] = storage_.data() + off[i];
      info_[i] = 0;
    }
    for (std::size_t i = 0; i < total; ++i) storage_[i] = -1;
  }

  int* const* ptrs() const { return ptrs_.data(); }
  int* info() const { return info_.data(); }
  const int* ipiv_of(int i) const { return ptrs_[i]; }

 private:
  gpusim::DeviceBuffer<int> storage_;
  gpusim::DeviceBuffer<int*> ptrs_;
  gpusim::DeviceBuffer<int> info_;
};

}  // namespace irrlu::batch
