// irrTRSM (paper §IV-D): recursive triangular solve over a non-uniform
// batch, performed *in place* and by true substitution (no explicit
// inversion of diagonal blocks, unlike the MAGMA-2.6.1 routine the paper
// improves on — see refbatch::InvTrsm for that baseline).
//
// The host drives the recursion on the *required* triangle order; the
// offset-carrying interface means each recursion level is just more
// irr_trsm / irr_gemm launches with shifted offsets, and DCWI retires the
// matrices whose local triangles are already fully solved. No workspaces,
// no pointer arithmetic kernels, fully asynchronous.
#include <algorithm>
#include <complex>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"

namespace irrlu::batch {

namespace {

/// Base-case triangle order: as large as the staged triangle allows. The
/// FP64 cap stays at 32 — that is the baseline schedule the fig10 sweep
/// pins — while narrow types may stage a 64-order triangle in the same
/// shared-memory budget (64*64 FP32 = 16 KiB), halving the recursion
/// depth and so the launch count of small-front solves (DESIGN.md §14).
template <typename T>
int trsm_base_size(const gpusim::DeviceModel& model) {
  const std::initializer_list<int> wide = {32, 16, 8};
  const std::initializer_list<int> narrow = {64, 32, 16, 8};
  for (int b : sizeof(T) < sizeof(double) ? narrow : wide) {
    if (static_cast<std::size_t>(b) * b * sizeof(T) +
            2 * alignof(std::max_align_t) <=
        model.shared_mem_per_block)
      return b;
  }
  return 4;
}

/// Base kernel: one block per matrix; stages the (<= 32 x 32) effective
/// triangle in shared memory and substitutes directly into B in global
/// memory.
template <typename T>
void trsm_base(gpusim::Device& dev, gpusim::Stream& stream, la::Side side,
               la::Uplo uplo, la::Trans trans, la::Diag diag, int m, int n,
               T alpha, T const* const* dT_array, const int* lddt, int Ti,
               int Tj, T* const* dB_array, const int* lddb, int Bi, int Bj,
               const int* m_vec, const int* n_vec, int batch_size) {
  const int base = trsm_base_size<T>(dev.model());
  const gpusim::LaunchConfig cfg{
      "irr_trsm_base", batch_size,
      static_cast<std::size_t>(base) * base * sizeof(T) +
          2 * alignof(std::max_align_t)};
  dev.launch(stream, cfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const TrsmWork w =
        dcwi_trsm(side, m, n, Ti, Tj, Bi, Bj, m_vec[id], n_vec[id]);
    if (w.none()) return;
    const int tri = side == la::Side::Left ? w.m : w.n;
    const int ldt = lddt[id], ldb = lddb[id];
    const T* Tp = dT_array[id] + static_cast<std::ptrdiff_t>(Tj) * ldt + Ti;
    T* Bp = dB_array[id] + static_cast<std::ptrdiff_t>(Bj) * ldb + Bi;

    // Substitute directly against the global triangle; la::trsm is
    // ld-independent, so the result is bitwise what the former
    // shared-memory staging produced. The LaunchConfig still charges the
    // staging footprint, so simulated time is unchanged.
    la::trsm(side, uplo, trans, diag, w.m, w.n, alpha, Tp, ldt, Bp, ldb);

    ctx.record(la::trsm_flops(tri, side == la::Side::Left ? w.n : w.m) *
                   la::flop_weight<T>,
               (0.5 * tri * tri + 2.0 * w.m * w.n) * sizeof(T));
  });
}

/// Splits the triangle order for the recursion: the smallest multiple of
/// `base` that is >= half (keeps the base kernels full-width).
int split_point(int tri, int base) {
  int half = (tri + 1) / 2;
  int s = (half + base - 1) / base * base;
  if (s >= tri) s = tri - base;
  return std::max(s, base);
}

}  // namespace

template <typename T>
void irr_trsm(gpusim::Device& dev, gpusim::Stream& stream, la::Side side,
              la::Uplo uplo, la::Trans trans, la::Diag diag, int m, int n,
              T alpha, T const* const* dT_array, const int* lddt, int Ti,
              int Tj, T* const* dB_array, const int* lddb, int Bi, int Bj,
              const int* m_vec, const int* n_vec, int batch_size) {
  if (batch_size <= 0 || m <= 0 || n <= 0) return;
  const int tri = side == la::Side::Left ? m : n;
  const int base = trsm_base_size<T>(dev.model());
  if (tri <= base) {
    trsm_base(dev, stream, side, uplo, trans, diag, m, n, alpha, dT_array,
              lddt, Ti, Tj, dB_array, lddb, Bi, Bj, m_vec, n_vec, batch_size);
    return;
  }
  const int t1 = split_point(tri, base);
  const int t2 = tri - t1;

  // Recursion helpers with shifted offsets. "first" solves the t1 block,
  // "second" the t2 block; `upd` is the connecting GEMM with beta = alpha
  // so that the not-yet-solved part of B is scaled exactly once.
  auto solve = [&](int tm, int tn, int ti, int tj, int bi, int bj, T a) {
    irr_trsm(dev, stream, side, uplo, trans, diag, tm, tn, a, dT_array, lddt,
             Ti + ti, Tj + tj, dB_array, lddb, Bi + bi, Bj + bj, m_vec, n_vec,
             batch_size);
  };
  auto update = [&](la::Trans ta, la::Trans tb, int gm, int gn, int gk,
                    int ai, int aj, int bi, int bj, int ci, int cj,
                    const int* kv_m, const int* kv_n) {
    // Operands: for Side::Left A = T-block, B = solved B-block;
    // for Side::Right A = solved B-block, B = T-block.
    if (side == la::Side::Left) {
      irr_gemm(dev, stream, ta, tb, gm, gn, gk, T(-1), dT_array, lddt,
               Ti + ai, Tj + aj,
               const_cast<T const* const*>(dB_array), lddb, Bi + bi, Bj + bj,
               alpha, dB_array, lddb, Bi + ci, Bj + cj, kv_m, kv_n, kv_m,
               batch_size);
    } else {
      irr_gemm(dev, stream, ta, tb, gm, gn, gk, T(-1),
               const_cast<T const* const*>(dB_array), lddb, Bi + ai, Bj + aj,
               dT_array, lddt, Ti + bi, Tj + bj, alpha, dB_array, lddb,
               Bi + ci, Bj + cj, kv_m, kv_n, kv_n, batch_size);
    }
  };

  if (side == la::Side::Left) {
    const bool lower_effective = (uplo == la::Uplo::Lower) ==
                                 (trans == la::Trans::No);
    if (lower_effective) {
      // Solve top block first, update bottom, solve bottom.
      solve(t1, n, 0, 0, 0, 0, alpha);
      if (trans == la::Trans::No) {
        // B2 = alpha B2 - T21 * X1, T21 at (t1, 0).
        update(la::Trans::No, la::Trans::No, t2, n, t1, t1, 0, 0, 0, t1, 0,
               m_vec, n_vec);
      } else {
        // op(T)21 = T12^T, T12 at (0, t1).
        update(trans, la::Trans::No, t2, n, t1, 0, t1, 0, 0, t1, 0, m_vec,
               n_vec);
      }
      solve(t2, n, t1, t1, t1, 0, T(1));
    } else {
      // Effective upper triangle: solve bottom first.
      solve(t2, n, t1, t1, t1, 0, alpha);
      if (trans == la::Trans::No) {
        // B1 = alpha B1 - T12 * X2, T12 at (0, t1).
        update(la::Trans::No, la::Trans::No, t1, n, t2, 0, t1, t1, 0, 0, 0,
               m_vec, n_vec);
      } else {
        // op(T)12 = T21^T, T21 at (t1, 0).
        update(trans, la::Trans::No, t1, n, t2, t1, 0, t1, 0, 0, 0, m_vec,
               n_vec);
      }
      solve(t1, n, 0, 0, 0, 0, T(1));
    }
  } else {
    // Side::Right: the triangle aligns with the columns of B.
    const bool lower_effective = (uplo == la::Uplo::Lower) ==
                                 (trans == la::Trans::No);
    if (lower_effective) {
      // X op(T) = B with op(T) lower: right-most columns first.
      solve(m, t2, t1, t1, 0, t1, alpha);
      if (trans == la::Trans::No) {
        // B1 = alpha B1 - X2 * T21, T21 at (t1, 0).
        update(la::Trans::No, la::Trans::No, m, t1, t2, 0, t1, t1, 0, 0, 0,
               m_vec, n_vec);
      } else {
        // op(T)21 = T12^T, T12 at (0, t1).
        update(la::Trans::No, trans, m, t1, t2, 0, t1, 0, t1, 0, 0, m_vec,
               n_vec);
      }
      solve(m, t1, 0, 0, 0, 0, T(1));
    } else {
      // op(T) upper: left-most columns first.
      solve(m, t1, 0, 0, 0, 0, alpha);
      if (trans == la::Trans::No) {
        // B2 = alpha B2 - X1 * T12, T12 at (0, t1).
        update(la::Trans::No, la::Trans::No, m, t2, t1, 0, 0, 0, t1, 0, t1,
               m_vec, n_vec);
      } else {
        // op(T)12 = T21^T, T21 at (t1, 0).
        update(la::Trans::No, trans, m, t2, t1, 0, 0, t1, 0, 0, t1, m_vec,
               n_vec);
      }
      solve(m, t2, t1, t1, 0, t1, T(1));
    }
  }
}

#define IRRLU_INSTANTIATE_IRRTRSM(T)                                         \
  template void irr_trsm<T>(gpusim::Device&, gpusim::Stream&, la::Side,      \
                            la::Uplo, la::Trans, la::Diag, int, int, T,      \
                            T const* const*, const int*, int, int,           \
                            T* const*, const int*, int, int, const int*,     \
                            const int*, int);

IRRLU_INSTANTIATE_IRRTRSM(float)
IRRLU_INSTANTIATE_IRRTRSM(double)
IRRLU_INSTANTIATE_IRRTRSM(std::complex<double>)

#undef IRRLU_INSTANTIATE_IRRTRSM

}  // namespace irrlu::batch
