// irr_getrs: batched triangular solves with the LU factors over a
// non-uniform batch. Exactly mirrors LAPACK xGETRS:
//   NoTrans:  B <- U^{-1} L^{-1} P B
//   Trans:    B <- P^T L^{-T} U^{-T} B
// with P the per-matrix row interchanges recorded by irr_getrf.
#include "irrblas/irr_kernels.hpp"

#include <algorithm>
#include <complex>

#include "lapack/blas.hpp"

namespace irrlu::batch {

namespace {

/// Applies the pivots to B — forward or backward — with per-matrix extents.
template <typename T>
void pivot_rows(gpusim::Device& dev, gpusim::Stream& stream, int n, int nrhs,
                const int* n_vec, int const* const* ipiv_array,
                T* const* dB_array, const int* lddb, const int* nrhs_vec,
                int batch_size, bool forward) {
  (void)n;
  (void)nrhs;
  dev.launch(stream, {"irr_getrs_pivot", batch_size, 0},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int rows = n_vec[id];
    const int width = nrhs_vec[id];
    if (rows <= 0 || width <= 0) return;
    const int ldb = lddb[id];
    T* B = dB_array[id];
    double swaps = 0;
    auto do_swap = [&](int r) {
      const int p = ipiv_array[id][r];
      if (p != r) {
        la::swap(width, B + r, ldb, B + p, ldb);
        swaps += 1;
      }
    };
    if (forward)
      for (int r = 0; r < rows; ++r) do_swap(r);
    else
      for (int r = rows - 1; r >= 0; --r) do_swap(r);
    ctx.record(0.0, swaps * 4.0 * width * (64.0 / sizeof(T)) * sizeof(T));
  });
}

}  // namespace

template <typename T>
void irr_getrs(gpusim::Device& dev, gpusim::Stream& stream, la::Trans trans,
               int n, int nrhs, T const* const* dA_array, const int* ldda,
               const int* n_vec, int const* const* ipiv_array,
               T* const* dB_array, const int* lddb, const int* nrhs_vec,
               int batch_size) {
  if (batch_size <= 0 || n <= 0 || nrhs <= 0) return;
  if (trans == la::Trans::No) {
    pivot_rows<T>(dev, stream, n, nrhs, n_vec, ipiv_array, dB_array, lddb,
                  nrhs_vec, batch_size, /*forward=*/true);
    irr_trsm<T>(dev, stream, la::Side::Left, la::Uplo::Lower, la::Trans::No,
                la::Diag::Unit, n, nrhs, T(1), dA_array, ldda, 0, 0,
                dB_array, lddb, 0, 0, n_vec, nrhs_vec, batch_size);
    irr_trsm<T>(dev, stream, la::Side::Left, la::Uplo::Upper, la::Trans::No,
                la::Diag::NonUnit, n, nrhs, T(1), dA_array, ldda, 0, 0,
                dB_array, lddb, 0, 0, n_vec, nrhs_vec, batch_size);
  } else {
    irr_trsm<T>(dev, stream, la::Side::Left, la::Uplo::Upper, la::Trans::Yes,
                la::Diag::NonUnit, n, nrhs, T(1), dA_array, ldda, 0, 0,
                dB_array, lddb, 0, 0, n_vec, nrhs_vec, batch_size);
    irr_trsm<T>(dev, stream, la::Side::Left, la::Uplo::Lower, la::Trans::Yes,
                la::Diag::Unit, n, nrhs, T(1), dA_array, ldda, 0, 0,
                dB_array, lddb, 0, 0, n_vec, nrhs_vec, batch_size);
    pivot_rows<T>(dev, stream, n, nrhs, n_vec, ipiv_array, dB_array, lddb,
                  nrhs_vec, batch_size, /*forward=*/false);
  }
}

#define IRRLU_INSTANTIATE_GETRS(T)                                          \
  template void irr_getrs<T>(gpusim::Device&, gpusim::Stream&, la::Trans,   \
                             int, int, T const* const*, const int*,         \
                             const int*, int const* const*, T* const*,      \
                             const int*, const int*, int);

IRRLU_INSTANTIATE_GETRS(float)
IRRLU_INSTANTIATE_GETRS(double)
IRRLU_INSTANTIATE_GETRS(std::complex<double>)

#undef IRRLU_INSTANTIATE_GETRS

}  // namespace irrlu::batch
