// Auto-tuning for irregular batches (the paper's §VI research direction:
// "find robust auto-tuning techniques based on the distributions of sizes
// in a single batch" — classical tuners take a single problem size, which
// does not exist here).
//
// The tuner exploits the simulator: it factors a small random *sample* of
// the batch (same size distribution) under each candidate panel width on a
// scratch timeline and returns the width with the smallest simulated time.
// On real hardware the same scheme would run timed warm-up batches.
#pragma once

#include <vector>

#include "gpusim/device.hpp"

namespace irrlu::batch {

struct AutotuneResult {
  int nb = 32;                     ///< winning panel width
  int sampled = 0;                 ///< matrices factored per candidate
  std::vector<int> candidates;    ///< widths tried
  std::vector<double> seconds;    ///< simulated seconds per candidate
};

/// Picks the LU panel width for a batch with the given square sizes on the
/// given device model. Exactly `sample` matrices are factored per candidate
/// (drawn uniformly from `sizes` with replacement, so `sample` may exceed
/// sizes.size()); candidates default to {8, 16, 32, 64}.
AutotuneResult autotune_panel_width(const gpusim::DeviceModel& model,
                                    const std::vector<int>& sizes,
                                    int sample = 64,
                                    std::vector<int> candidates = {8, 16, 32,
                                                                   64});

}  // namespace irrlu::batch
