#include "irrblas/dispatch.hpp"

#include "common/error.hpp"

namespace irrlu::batch {

const la::mk::ilv::Kernel* KernelCache::resolve(const KernelKey& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    return it->second.get();
  }
  ++stats_.misses;
  IRRLU_CHECK_MSG(key.layout == BatchLayout::kInterleaved,
                  "dispatch cache: only interleaved kernels exist");
  const la::mk::ilv::Prec prec = key.prec == MicroPrec::kF32
                                     ? la::mk::ilv::Prec::kF32
                                     : la::mk::ilv::Prec::kF64;
  la::mk::ilv::Kernel built;
  switch (key.op) {
    case MicroOp::kGemm:
      built = la::mk::ilv::make_gemm(key.m, key.n, key.k, prec);
      break;
    case MicroOp::kTrsmLeft:
      built = la::mk::ilv::make_trsm(true, (key.flags & 1u) != 0,
                                     (key.flags & 2u) != 0, key.m, key.n,
                                     prec);
      break;
    case MicroOp::kTrsmRight:
      built = la::mk::ilv::make_trsm(false, (key.flags & 1u) != 0,
                                     (key.flags & 2u) != 0, key.m, key.n,
                                     prec);
      break;
    case MicroOp::kGetf2:
      built = la::mk::ilv::make_getf2(key.m, key.n, prec);
      break;
  }
  auto owned = std::make_unique<la::mk::ilv::Kernel>(built);
  const la::mk::ilv::Kernel* out = owned.get();
  map_.emplace(key, std::move(owned));
  return out;
}

}  // namespace irrlu::batch
