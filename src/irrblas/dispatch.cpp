#include "irrblas/dispatch.hpp"

#include "common/error.hpp"

namespace irrlu::batch {

const la::mk::ilv::Kernel* KernelCache::resolve(const KernelKey& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    return it->second.get();
  }
  ++stats_.misses;
  IRRLU_CHECK_MSG(key.layout == BatchLayout::kInterleaved &&
                      key.prec == MicroPrec::kF64,
                  "dispatch cache: only interleaved f64 kernels exist");
  la::mk::ilv::Kernel built;
  switch (key.op) {
    case MicroOp::kGemm:
      built = la::mk::ilv::make_gemm(key.m, key.n, key.k);
      break;
    case MicroOp::kTrsmLeft:
      built = la::mk::ilv::make_trsm(true, (key.flags & 1u) != 0,
                                     (key.flags & 2u) != 0, key.m, key.n);
      break;
    case MicroOp::kTrsmRight:
      built = la::mk::ilv::make_trsm(false, (key.flags & 1u) != 0,
                                     (key.flags & 2u) != 0, key.m, key.n);
      break;
    case MicroOp::kGetf2:
      built = la::mk::ilv::make_getf2(key.m, key.n);
      break;
  }
  auto owned = std::make_unique<la::mk::ilv::Kernel>(built);
  const la::mk::ilv::Kernel* out = owned.get();
  map_.emplace(key, std::move(owned));
  return out;
}

}  // namespace irrlu::batch
