// irrQR (the paper's §VI future work, implemented): blocked Householder QR
// on a non-uniform batch, built from the same two design concepts as
// irrLU-GPU — the offset-carrying interface and DCWI.
//
// Per panel: a fused kernel factors the panel in shared memory (GEQR2),
// forms the compact-WY T factor there, and exports the unit-lower
// reflector block V (zero-padded to the fixed panel width) into a
// workspace; the trailing update Q^T C = C - V T^T (V^T C) then runs as
// three irrGEMM calls whose DCWI clamps retire matrices automatically.
// Zero-padding V and T makes the fixed required panel width numerically
// inert for matrices whose local panel is narrower.
#include <algorithm>
#include <string>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/qr.hpp"

namespace irrlu::batch {

namespace {

/// Fused panel QR: one block per matrix. Stages the (rows x cols) panel,
/// runs GEQR2 + LARFT in shared memory, writes back the panel (R on/above
/// the diagonal, reflectors below), tau, the zero-padded T factor, and the
/// masked reflector block V into the workspace rows [Ai, Ai+rows).
template <typename T>
void geqr2_fused(gpusim::Device& dev, gpusim::Stream& stream, int m, int jb,
                 T* const* dA_array, const int* ldda, int Ai, int Aj,
                 const int* m_vec, const int* n_vec, T* const* tau_array,
                 T* const* dV_array, int ldv, T* const* dT_array,
                 int batch_size) {
  std::size_t smem = static_cast<std::size_t>(m) * jb * sizeof(T) +
                     static_cast<std::size_t>(jb) * jb * sizeof(T) +
                     2 * static_cast<std::size_t>(jb) * sizeof(T) + 64;
  // Tall panels beyond the shared-memory budget run in global memory
  // (keeping T/tau/work staging only), at a traffic premium.
  const bool staged = smem <= dev.model().shared_mem_per_block;
  if (!staged)
    smem = static_cast<std::size_t>(jb) * jb * sizeof(T) +
           2 * static_cast<std::size_t>(jb) * sizeof(T) + 64;
  dev.launch(stream, {staged ? "irr_geqr2_fused" : "irr_geqr2_global",
                      batch_size, smem},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int rows = dcwi_clamp(m, m_vec[id], Ai);
    const int cols = dcwi_clamp(jb, n_vec[id], Aj);
    // Zero T and the V rows this panel owns, even when the local panel is
    // empty — stale data must never leak into the update GEMMs.
    T* Tw = dT_array[id];
    for (int c = 0; c < jb; ++c)
      for (int r = 0; r < jb; ++r)
        Tw[static_cast<std::ptrdiff_t>(c) * jb + r] = T{};
    T* V = dV_array[id];
    if (rows > 0)
      for (int c = 0; c < jb; ++c)
        for (int r = 0; r < rows; ++r)
          V[static_cast<std::ptrdiff_t>(c) * ldv + Ai + r] = T{};
    if (rows <= 0 || cols <= 0) return;

    const int lda = ldda[id];
    T* A = dA_array[id] + static_cast<std::ptrdiff_t>(Aj) * lda + Ai;
    T* st = ctx.smem_alloc<T>(static_cast<std::size_t>(jb) * jb);
    T* stau = ctx.smem_alloc<T>(static_cast<std::size_t>(jb));
    T* work = ctx.smem_alloc<T>(static_cast<std::size_t>(jb));

    T* p;      // where the panel is factored
    int ldp;
    if (staged) {
      p = ctx.smem_alloc<T>(static_cast<std::size_t>(rows) * cols);
      ldp = rows;
      for (int c = 0; c < cols; ++c)
        for (int r = 0; r < rows; ++r)
          p[static_cast<std::ptrdiff_t>(c) * rows + r] =
              A[static_cast<std::ptrdiff_t>(c) * lda + r];
    } else {
      p = A;
      ldp = lda;
    }

    const int k = std::min(rows, cols);
    la::geqr2(rows, cols, p, ldp, stau, work);
    la::larft(rows, k, p, ldp, stau, st, jb);

    if (staged)
      for (int c = 0; c < cols; ++c)
        for (int r = 0; r < rows; ++r)
          A[static_cast<std::ptrdiff_t>(c) * lda + r] =
              p[static_cast<std::ptrdiff_t>(c) * rows + r];
    for (int c = 0; c < k; ++c) tau_array[id][Aj + c] = stau[c];
    for (int c = 0; c < k; ++c)
      for (int r = 0; r <= c; ++r)
        Tw[static_cast<std::ptrdiff_t>(c) * jb + r] =
            st[static_cast<std::ptrdiff_t>(c) * jb + r];
    // Masked V: unit diagonal, reflectors below, zeros above (the zeroing
    // pass above already cleared everything).
    for (int c = 0; c < k; ++c) {
      V[static_cast<std::ptrdiff_t>(c) * ldv + Ai + c] = T(1);
      for (int r = c + 1; r < rows; ++r)
        V[static_cast<std::ptrdiff_t>(c) * ldv + Ai + r] =
            p[static_cast<std::ptrdiff_t>(c) * ldp + r];
    }
    // Staged: one read + one write of the panel plus the V export;
    // global: GEQR2 touches the trailing subpanel once per column.
    ctx.record(
        la::geqrf_flops(rows, cols) + static_cast<double>(k) * k * rows,
        staged ? (3.0 * rows * cols + 1.0 * rows * jb) * sizeof(T)
               : (1.0 * rows * cols * (1.0 + cols / 2.0) + rows * jb) *
                     sizeof(T));
  });
}

}  // namespace

template <typename T>
void irr_geqrf(gpusim::Device& dev, gpusim::Stream& stream, int m, int n,
               T* const* dA_array, const int* ldda, const int* m_vec,
               const int* n_vec, T* const* tau_array, int batch_size,
               int nb) {
  if (batch_size <= 0) return;
  const int kmax = std::min(m, n);
  if (kmax <= 0) return;
  nb = std::max(1, nb);

  // Workspaces (fixed pointers for the whole factorization): V (m x nb per
  // matrix), T (nb x nb), W1/W2 (nb x n) plus the per-matrix pointer and
  // dimension arrays. All served from the device's reusable workspace
  // cache keyed by stream: repeated irr_geqrf calls perform no allocation
  // and — since the cached buffers outlive the enqueued kernels — need no
  // trailing lifetime synchronization. The pointer/dimension fills below
  // are recomputed every call (the cache only guarantees capacity).
  const auto bs = static_cast<std::size_t>(batch_size);
  const std::string sk = ".s" + std::to_string(stream.id());
  T* vbuf = dev.workspace<T>("irrqr.v" + sk,
                             bs * static_cast<std::size_t>(m) * nb);
  T* tbuf = dev.workspace<T>("irrqr.t" + sk,
                             bs * static_cast<std::size_t>(nb) * nb);
  T* w1buf = dev.workspace<T>("irrqr.w1" + sk,
                              bs * static_cast<std::size_t>(nb) * n);
  T* w2buf = dev.workspace<T>("irrqr.w2" + sk,
                              bs * static_cast<std::size_t>(nb) * n);
  T** vptr = dev.workspace<T*>("irrqr.vp" + sk, bs);
  T** tptr = dev.workspace<T*>("irrqr.tp" + sk, bs);
  T** w1ptr = dev.workspace<T*>("irrqr.w1p" + sk, bs);
  T** w2ptr = dev.workspace<T*>("irrqr.w2p" + sk, bs);
  int* ld_nb = dev.workspace<int>("irrqr.ldnb" + sk, bs);
  int* ld_v = dev.workspace<int>("irrqr.ldv" + sk, bs);
  int* vec_nb = dev.workspace<int>("irrqr.vnb" + sk, bs);
  int* vec_n = dev.workspace<int>("irrqr.vn" + sk, bs);
  for (std::size_t i = 0; i < bs; ++i) {
    vptr[i] = vbuf + i * static_cast<std::size_t>(m) * nb;
    tptr[i] = tbuf + i * static_cast<std::size_t>(nb) * nb;
    w1ptr[i] = w1buf + i * static_cast<std::size_t>(nb) * n;
    w2ptr[i] = w2buf + i * static_cast<std::size_t>(nb) * n;
    ld_nb[i] = nb;
    ld_v[i] = m;
    vec_nb[i] = nb;
    vec_n[i] = n;
  }

  for (int j = 0; j < kmax; j += nb) {
    const int jb = std::min(nb, kmax - j);
    geqr2_fused<T>(dev, stream, m - j, jb, dA_array, ldda, j, j, m_vec,
                   n_vec, tau_array, vptr, m, tptr, batch_size);
    if (j + jb >= n) continue;
    const int nrest = n - j - jb;
    // W1 = V^T C  (rows of V clamp at m_loc via the k offset j).
    irr_gemm<T>(dev, stream, la::Trans::Yes, la::Trans::No, jb, nrest, m - j,
                T(1), const_cast<T const* const*>(vptr), ld_v,
                j, 0, const_cast<T const* const*>(dA_array), ldda, j, j + jb,
                T(0), w1ptr, ld_nb, 0, 0, vec_nb, n_vec,
                m_vec, batch_size);
    // W2 = T^T W1.
    irr_gemm<T>(dev, stream, la::Trans::Yes, la::Trans::No, jb, nrest, jb,
                T(1), const_cast<T const* const*>(tptr), ld_nb,
                0, 0, const_cast<T const* const*>(w1ptr),
                ld_nb, 0, 0, T(0), w2ptr, ld_nb, 0, 0,
                vec_nb, vec_n, vec_nb, batch_size);
    // C -= V W2.
    irr_gemm<T>(dev, stream, la::Trans::No, la::Trans::No, m - j, nrest, jb,
                T(-1), const_cast<T const* const*>(vptr), ld_v,
                j, 0, const_cast<T const* const*>(w2ptr),
                ld_nb, 0, 0, T(1), dA_array, ldda, j, j + jb,
                m_vec, n_vec, vec_nb, batch_size);
  }
}

#define IRRLU_INSTANTIATE_GEQRF(T)                                         \
  template void irr_geqrf<T>(gpusim::Device&, gpusim::Stream&, int, int,   \
                             T* const*, const int*, const int*,            \
                             const int*, T* const*, int, int);

IRRLU_INSTANTIATE_GEQRF(float)
IRRLU_INSTANTIATE_GEQRF(double)

#undef IRRLU_INSTANTIATE_GEQRF

}  // namespace irrlu::batch
