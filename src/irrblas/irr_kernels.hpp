// Public flat interfaces of the irregular-batch kernels (paper §IV).
//
// Argument convention (Figure 3 of the paper): scalar *required dimensions*
// describe the operation for the largest matrix in the batch; device arrays
// of *local dimensions* (m_vec, n_vec, k_vec) give the per-matrix operation
// extents at zero offset and are never modified; scalar *pointer offsets*
// (Ai, Aj, ...) locate the submatrix inside every matrix, i.e. the operand
// pointer of problem `id` is `Array[id] + Aj * ld[id] + Ai`. The DCWI layer
// (dcwi.hpp) turns these into the per-matrix effective workload at kernel
// execution time; no per-step pointer or integer arithmetic ever happens on
// the host.
//
// All pointers ("device arrays") live in simulated device memory; kernels
// are launched on `stream` of `dev` and are asynchronous with respect to
// the simulated timeline (the host may keep enqueueing).
#pragma once

#include "gpusim/device.hpp"
#include "lapack/types.hpp"

namespace irrlu::batch {

// ---------------------------------------------------------------- irrGEMM

/// C[id](Ci.., Cj..) = alpha * op(A[id])(..) * op(B[id])(..) + beta * C(..)
/// for every id; per-matrix effective (m, n, k) inferred by DCWI from
/// (m, n, k), (m_vec, n_vec, k_vec) and the offsets.
template <typename T>
void irr_gemm(gpusim::Device& dev, gpusim::Stream& stream, la::Trans transA,
              la::Trans transB, int m, int n, int k, T alpha,
              T const* const* dA_array, const int* ldda, int Ai, int Aj,
              T const* const* dB_array, const int* lddb, int Bi, int Bj,
              T beta, T* const* dC_array, const int* lddc, int Ci, int Cj,
              const int* m_vec, const int* n_vec, const int* k_vec,
              int batch_size);

// ---------------------------------------------------------------- irrTRSM

/// Solves op(T[id]) X = alpha B[id] (Side::Left) or X op(T[id]) = alpha B
/// (Side::Right) in place over the batch. Recursive: the host splits the
/// triangle until the base kernel solves blocks of <= 32, turning the bulk
/// of the work into irrGEMM calls — the paper's §IV-D design, enabled by
/// the offset-carrying interface (no per-level workspace or pointer
/// arithmetic). m is the order of the triangular system of the largest
/// matrix, n the maximum number of right-hand sides; m_vec/n_vec the local
/// counterparts (for Side::Right the triangle order aligns with n).
template <typename T>
void irr_trsm(gpusim::Device& dev, gpusim::Stream& stream, la::Side side,
              la::Uplo uplo, la::Trans trans, la::Diag diag, int m, int n,
              T alpha, T const* const* dT_array, const int* lddt, int Ti,
              int Tj, T* const* dB_array, const int* lddb, int Bi, int Bj,
              const int* m_vec, const int* n_vec, int batch_size);

// ------------------------------------------------------ panel decomposition

/// Small-pivot recovery (SuperLU-style static boosting) for the panel
/// kernels. When active, a pivot whose magnitude falls below
/// `tau * anorm_vec[id]` — a per-matrix threshold, so one ill-conditioned
/// problem never perturbs its batch siblings — is replaced by a signed
/// perturbation of that magnitude and elimination continues with finite
/// multipliers; `boost_vec[id]` (when non-null) counts the replacements.
/// `info` keeps its LAPACK meaning (first *exactly*-zero pivot column)
/// regardless of boosting, so singularity stays visible. Inactive (the
/// default: tau == 0 or anorm_vec == nullptr) the kernels are bit-for-bit
/// the unboosted ones.
struct PivotBoost {
  double tau = 0.0;  ///< relative threshold; <= 0 disables boosting
  /// Device array, one entry per matrix: the max-magnitude norm of the
  /// matrix (or front) *before* factorization. nullptr disables boosting.
  const double* anorm_vec = nullptr;
  /// Optional device array, one entry per matrix: incremented once per
  /// boosted pivot. Caller must zero-initialize.
  int* boost_vec = nullptr;

  bool active() const { return tau > 0.0 && anorm_vec != nullptr; }
};

/// Shared-memory footprint of the fused panel kernel for a panel of
/// (required) height m and width jb: the staged panel plus pivot space,
/// with alignment slack. Used both by the kernel's launch configuration
/// and by the irr_getrf driver's path switch, so the two always agree.
template <typename T>
std::size_t irr_getf2_smem_bytes(int m, int jb) {
  return static_cast<std::size_t>(m) * jb * sizeof(T) + jb * sizeof(int) +
         2 * alignof(std::max_align_t);
}

/// Fused panel factorization (irrGETF2, §IV-E): one thread block per
/// matrix stages its panel (rows Ai.., columns [Aj, Aj+jb)) in shared
/// memory and performs the unblocked partially-pivoted LU there. The caller
/// must have verified the shared-memory estimate fits the device (the
/// required panel height is m; smem = (m * jb) elements plus pivot space).
/// Pivot indices are written at ipiv_array[id][Aj + c] as *absolute* row
/// indices within the matrix (LAPACK convention with 0-based rows); beyond
/// each matrix's effective panel nothing is written. info_array[id] is set
/// to (1 + column) of the first exactly-zero pivot, if any.
template <typename T>
void irr_getf2_fused(gpusim::Device& dev, gpusim::Stream& stream, int m,
                     int jb, T* const* dA_array, const int* ldda, int Ai,
                     int Aj, const int* m_vec, const int* n_vec,
                     int* const* ipiv_array, int* info_array, int batch_size,
                     const PivotBoost& boost = {});

/// Column-wise panel path (the fallback when the panel exceeds shared
/// memory): for each of the jb columns, launches the four §IV-E kernels —
/// pivot search (irrIAMAX), row interchange within the panel (irrSWAP),
/// column scaling (irrSCAL) and the rank-1 trailing update (irrGER).
/// Same pivot/info contract as irr_getf2_fused.
template <typename T>
void irr_panel_columnwise(gpusim::Device& dev, gpusim::Stream& stream, int m,
                          int jb, T* const* dA_array, const int* ldda, int Ai,
                          int Aj, const int* m_vec, const int* n_vec,
                          int* const* ipiv_array, int* info_array,
                          int batch_size, const PivotBoost& boost = {});

// ---------------------------------------------------------------- irrLASWP

/// How the panel's row interchanges are applied to the columns outside the
/// panel (paper §IV-F).
enum class LaswpMethod {
  kLooped,     ///< reference: one swap per pivot row, strided row access
  kRehearsal,  ///< rehearse on one-column index matrices, then move data
               ///< through shared memory in contiguous chunks
};

/// Ints of workspace required by the rehearsal method (aux one-column
/// matrices of §IV-F): per matrix one count plus two entries per possible
/// pivot step.
inline std::size_t irr_laswp_workspace_size(int batch_size, int jb) {
  return static_cast<std::size_t>(batch_size) * (1 + 4 * jb);
}

/// Applies the interchanges recorded by the panel at columns [j, j+jb) to
/// the w_l columns left of the panel and the w_r columns right of it (both
/// inferred per matrix by DCWI). Pivot entries are absolute row indices as
/// produced by the panel kernels.
///
/// kLooped launches one irrSWAP per pivot row (the reference of §IV-F):
/// heavy launch count and strided row traffic, but *zero* data movement for
/// pivots already on the diagonal. kRehearsal first replays the swaps on
/// auxiliary one-column index matrices in `workspace`, then moves each
/// touched row exactly once through shared-memory chunks — faster for
/// realistic pivoting, slightly slower in the all-diagonal corner case,
/// exactly as the paper discusses. `workspace` must hold
/// irr_laswp_workspace_size(batch_size, jb) ints; if null, the routine
/// draws one from the device's per-stream workspace cache
/// (Device::workspace), which allocates on first use only and keeps the
/// call fully asynchronous. The explicit parameter remains the way to
/// share one workspace across routines (as irr_getrf's driver does).
template <typename T>
void irr_laswp(gpusim::Device& dev, gpusim::Stream& stream, int j, int jb,
               T* const* dA_array, const int* ldda, const int* m_vec,
               const int* n_vec, int const* const* ipiv_array, int batch_size,
               LaswpMethod method = LaswpMethod::kRehearsal,
               int* workspace = nullptr);

/// Concurrent-swap variant (the paper's §VI future-work item: "performing
/// the right and left swaps simultaneously"): after the rehearsal, the
/// left widths move on `main` while the right widths move on `aux`,
/// synchronized with stream events; `main` is re-joined at the end so the
/// caller's subsequent kernels observe both halves.
template <typename T>
void irr_laswp_dual(gpusim::Device& dev, gpusim::Stream& main,
                    gpusim::Stream& aux, int j, int jb, T* const* dA_array,
                    const int* ldda, const int* m_vec, const int* n_vec,
                    int const* const* ipiv_array, int batch_size,
                    int* workspace = nullptr);

// ---------------------------------------------------------------- irrLU

/// Options for the blocked irregular LU driver.
struct IrrLuOptions {
  int nb = 32;  ///< panel width (the paper suggests 16-32)
  bool force_columnwise_panel = false;  ///< disable the fused panel
  LaswpMethod laswp = LaswpMethod::kRehearsal;
  /// When set, the row interchanges run concurrently: left widths on the
  /// driver's stream and right widths on this auxiliary stream (events
  /// keep the ordering) — the paper's §VI concurrent-swap idea. Only used
  /// with LaswpMethod::kRehearsal.
  gpusim::Stream* laswp_aux_stream = nullptr;

  /// Caller-provided device workspaces (optional). When set the driver
  /// performs no allocation at all; when null it draws per-stream scratch
  /// from the device's workspace cache, allocating only on the first call
  /// (or a larger batch) — either way the driver is fully asynchronous,
  /// with no trailing synchronization (the paper's interface discussion
  /// §IV-F). kmin_workspace needs batch_size ints; laswp_workspace needs
  /// irr_laswp_workspace_size(batch_size, nb) ints.
  int* kmin_workspace = nullptr;
  int* laswp_workspace = nullptr;

  /// Small-pivot recovery passed through to the panel kernels (inactive by
  /// default; see PivotBoost).
  PivotBoost boost;
};

/// irrLU-GPU (§IV): blocked LU with partial pivoting on a batch of
/// matrices of arbitrary sizes. Factors matrix id in place to
/// min(m_vec[id], n_vec[id]) columns; the host loop runs to
/// max_id min(m_vec, n_vec) and DCWI retires matrices as they complete.
/// `m`/`n` are the required dims (max over the batch); offsets (Ai, Aj)
/// allow factoring a trailing submatrix of every matrix.
template <typename T>
void irr_getrf(gpusim::Device& dev, gpusim::Stream& stream, int m, int n,
               T* const* dA_array, const int* ldda, int Ai, int Aj,
               const int* m_vec, const int* n_vec, int* const* ipiv_array,
               int* info_array, int batch_size,
               const IrrLuOptions& opts = {});

// ---------------------------------------------------------------- irrQR

/// Blocked Householder QR over a non-uniform batch (the paper's stated
/// future-work decomposition, §VI — the interface and DCWI carry over
/// unchanged). On exit each A[id] holds R on/above the diagonal and the
/// reflector vectors below; tau_array[id] receives min(m_loc, n_loc)
/// scalar factors. Internally: fused shared-memory panel (GEQR2 + LARFT)
/// when it fits, and a compact-WY trailing update expressed as three
/// irrGEMM calls over zero-padded workspaces so that DCWI retires matrices
/// with no extra bookkeeping.
template <typename T>
void irr_geqrf(gpusim::Device& dev, gpusim::Stream& stream, int m, int n,
               T* const* dA_array, const int* ldda, const int* m_vec,
               const int* n_vec, T* const* tau_array, int batch_size,
               int nb = 32);

/// Batched solve after irr_getrf: op(A[id]) X = B[id] for every id, using
/// the factors and pivots produced by the driver. B[id] is n_loc x
/// nrhs_loc; required dims are the maxima. Composed entirely of
/// irr_laswp_range and irr_trsm calls — the same building blocks as the
/// factorization, demonstrating the interface's composability.
template <typename T>
void irr_getrs(gpusim::Device& dev, gpusim::Stream& stream, la::Trans trans,
               int n, int nrhs, T const* const* dA_array, const int* ldda,
               const int* n_vec, int const* const* ipiv_array,
               T* const* dB_array, const int* lddb, const int* nrhs_vec,
               int batch_size);

// ------------------------------------------------------------- auxiliaries

/// Batched pivot application with explicit column range [c0, c0+w) capped
/// per matrix by DCWI — used by the multifrontal solver to apply F11 pivots
/// to F12 blocks of varying widths.
template <typename T>
void irr_laswp_range(gpusim::Device& dev, gpusim::Stream& stream, int k0,
                     int k1, int w, T* const* dA_array, const int* ldda,
                     int c0, const int* m_vec, const int* n_vec,
                     int const* const* ipiv_array, int batch_size);

/// Rehearsed variant of irr_laswp_range: the pivot chain [k0, k1) is first
/// replayed on auxiliary index columns (§IV-F), then every touched row
/// moves exactly once through shared-memory chunks instead of one strided
/// swap per pivot. Result-identical to irr_laswp_range; the traffic is
/// swap-chain-compressed. The FP64 multifrontal path keeps the strided
/// reference schedule for cost-reproducibility with the pre-mixed-precision
/// baseline; FP32 fronts (DESIGN.md §14) take this kernel. `workspace`
/// must hold irr_laswp_workspace_size(batch_size, k1 - k0) ints, or null
/// to draw from the device's per-stream workspace cache.
template <typename T>
void irr_laswp_range_staged(gpusim::Device& dev, gpusim::Stream& stream,
                            int k0, int k1, int w, T* const* dA_array,
                            const int* ldda, int c0, const int* m_vec,
                            const int* n_vec, int const* const* ipiv_array,
                            int batch_size, int* workspace = nullptr);

}  // namespace irrlu::batch
