// irrGEMM (paper §IV-C): matrix multiply over a non-uniform batch.
//
// Grid layout mirrors MAGMA's vbatched GEMM: the grid is sized for the
// *required* dimensions (the largest problem); every block first runs DCWI
// and exits immediately when its tile falls outside its matrix's effective
// workload. Tiles are staged through shared memory.
#include <algorithm>
#include <complex>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"

namespace irrlu::batch {

namespace {

/// Tile sizes adapt to the device's shared-memory capacity (a real GPU
/// kernel would be compiled per architecture; here the choice is runtime).
struct GemmTiles {
  int tm, tn, tk;
  std::size_t smem_bytes(std::size_t elem) const {
    return static_cast<std::size_t>(tm * tk + tk * tn) * elem +
           2 * alignof(std::max_align_t);
  }
};

template <typename T>
GemmTiles pick_tiles(const gpusim::DeviceModel& model) {
  for (GemmTiles t : {GemmTiles{64, 64, 16}, GemmTiles{32, 32, 8},
                      GemmTiles{16, 16, 8}, GemmTiles{8, 8, 4}}) {
    if (t.smem_bytes(sizeof(T)) <= model.shared_mem_per_block) return t;
  }
  return GemmTiles{4, 4, 2};
}

}  // namespace

template <typename T>
void irr_gemm(gpusim::Device& dev, gpusim::Stream& stream, la::Trans transA,
              la::Trans transB, int m, int n, int k, T alpha,
              T const* const* dA_array, const int* ldda, int Ai, int Aj,
              T const* const* dB_array, const int* lddb, int Bi, int Bj,
              T beta, T* const* dC_array, const int* lddc, int Ci, int Cj,
              const int* m_vec, const int* n_vec, const int* k_vec,
              int batch_size) {
  if (batch_size <= 0 || m <= 0 || n <= 0) return;
  const GemmTiles tiles = pick_tiles<T>(dev.model());
  const int kTileM = tiles.tm, kTileN = tiles.tn;
  const int tiles_m = (m + kTileM - 1) / kTileM;
  const int tiles_n = (n + kTileN - 1) / kTileN;
  const gpusim::LaunchConfig cfg{"irr_gemm", batch_size * tiles_m * tiles_n,
                                 tiles.smem_bytes(sizeof(T))};

  dev.launch(stream, cfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block() / (tiles_m * tiles_n);
    const int tile = ctx.block() % (tiles_m * tiles_n);
    const int tm = tile % tiles_m;
    const int tn = tile / tiles_m;

    const GemmWork w =
        dcwi_gemm(transA, transB, m, n, k, Ai, Aj, Bi, Bj, Ci, Cj, m_vec[id],
                  n_vec[id], k_vec ? k_vec[id] : k);
    if (w.none()) return;

    const int row0 = tm * kTileM;
    const int col0 = tn * kTileN;
    if (row0 >= w.m || col0 >= w.n) return;
    const int em = std::min(kTileM, w.m - row0);
    const int en = std::min(kTileN, w.n - col0);

    const int lda = ldda[id], ldb = lddb[id], ldc = lddc[id];
    const T* A = dA_array[id] + static_cast<std::ptrdiff_t>(Aj) * lda + Ai;
    const T* B = dB_array[id] + static_cast<std::ptrdiff_t>(Bj) * ldb + Bi;
    T* C = dC_array[id] + static_cast<std::ptrdiff_t>(Cj) * ldc + Ci +
           static_cast<std::ptrdiff_t>(col0) * ldc + row0;

    // Scale the C tile by beta exactly once (even when w.k == 0).
    if (beta != T(1)) {
      for (int j = 0; j < en; ++j) {
        T* cj = C + static_cast<std::ptrdiff_t>(j) * ldc;
        if (beta == T{})
          std::fill(cj, cj + em, T{});
        else
          for (int i = 0; i < em; ++i) cj[i] *= beta;
      }
    }
    double bytes = 2.0 * em * en * sizeof(T);  // C read-modify-write

    if (w.k > 0 && alpha != T{}) {
      // The packed engine does its own (register-file) staging, so the
      // tile goes straight through la::gemm on the op()-adjusted global
      // pointers. Byte accounting matches the former shared-memory
      // staging loop: every k-chunk moved (em + en) * ek elements, which
      // telescopes to (em + en) * w.k.
      const T* At = transA == la::Trans::No
                        ? A + row0
                        : A + static_cast<std::ptrdiff_t>(row0) * lda;
      const T* Bt = transB == la::Trans::No
                        ? B + static_cast<std::ptrdiff_t>(col0) * ldb
                        : B + col0;
      la::gemm(transA, transB, em, en, w.k, alpha, At, lda, Bt, ldb, T(1), C,
               ldc);
      bytes += static_cast<double>(em + en) * w.k * sizeof(T);
      ctx.record(la::gemm_flops(em, en, w.k) * la::flop_weight<T>, bytes);
    } else {
      ctx.record(0.0, bytes);
    }
  });
}

#define IRRLU_INSTANTIATE_IRRGEMM(T)                                          \
  template void irr_gemm<T>(                                                  \
      gpusim::Device&, gpusim::Stream&, la::Trans, la::Trans, int, int, int,  \
      T, T const* const*, const int*, int, int, T const* const*, const int*, \
      int, int, T, T* const*, const int*, int, int, const int*, const int*,  \
      const int*, int);

IRRLU_INSTANTIATE_IRRGEMM(float)
IRRLU_INSTANTIATE_IRRGEMM(double)
IRRLU_INSTANTIATE_IRRGEMM(std::complex<double>)

#undef IRRLU_INSTANTIATE_IRRGEMM

}  // namespace irrlu::batch
