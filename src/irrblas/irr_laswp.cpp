// irrLASWP (paper §IV-F): applying the panel's row interchanges to the
// columns left and right of the panel, whose widths w_l / w_r differ for
// every matrix and are inferred by DCWI.
//
// Two methods are provided (and compared in bench/ablation_laswp):
//  - kLooped: the reference — irrSWAP called in a loop, one kernel launch
//    per pivot row; each swap touches two full rows with strided access.
//  - kRehearsal: the paper's optimization — the pivot sequence is first
//    replayed ("rehearsed") on auxiliary one-column index matrices living
//    in a workspace; this resolves swap chains so that every touched row
//    moves exactly once, through shared-memory column chunks. The method
//    moves rows that end up staying in place too (isolating them is not
//    worth it), so an all-diagonal pivot pattern is the one case where the
//    looped reference wins.
#include <algorithm>
#include <complex>
#include <string>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"

namespace irrlu::batch {

namespace {

// Cache-line waste factor of accessing one row of a column-major matrix.
template <typename T>
constexpr double row_penalty() {
  return 64.0 / sizeof(T);
}

// Shared-memory budget of the rehearsal move kernel's column chunks.
constexpr std::size_t kMoveSmemBytes = 32 << 10;

template <typename T>
void laswp_looped(gpusim::Device& dev, gpusim::Stream& stream, int j, int jb,
                  T* const* dA_array, const int* ldda, const int* m_vec,
                  const int* n_vec, int const* const* ipiv_array,
                  int batch_size) {
  for (int r = j; r < j + jb; ++r) {
    dev.launch(stream, {"irr_laswp_swap", batch_size, 0},
               [=](gpusim::BlockCtx& ctx) {
      const int id = ctx.block();
      const LaswpWork w = dcwi_laswp(j, jb, m_vec[id], n_vec[id]);
      if (w.none() || r >= j + w.rows) return;
      const int p = ipiv_array[id][r];
      if (p == r) return;  // pivot on the diagonal: skip entirely
      const int lda = ldda[id];
      T* A = dA_array[id];
      if (w.wl > 0) la::swap(w.wl, A + r, lda, A + p, lda);
      if (w.wr > 0)
        la::swap(w.wr, A + static_cast<std::ptrdiff_t>(w.wr_off) * lda + r,
                 lda, A + static_cast<std::ptrdiff_t>(w.wr_off) * lda + p,
                 lda);
      // Two rows read + two rows written, strided.
      ctx.record(0.0,
                 4.0 * (w.wl + w.wr) * row_penalty<T>() * sizeof(T));
    });
  }
}

enum class MoveRange { kBoth, kLeftOnly, kRightOnly };

/// Phase-1 rehearsal kernel (shared by the single- and dual-stream paths).
template <typename T>
void laswp_rehearse_kernel(gpusim::Device& dev, gpusim::Stream& stream,
                           int j, int jb, const int* m_vec, const int* n_vec,
                           int const* const* ipiv_array, int batch_size,
                           int* ws);

/// Phase-2 move kernel over the selected column range(s).
template <typename T>
void laswp_move_kernel(gpusim::Device& dev, gpusim::Stream& stream, int j,
                       int jb, T* const* dA_array, const int* ldda,
                       const int* m_vec, const int* n_vec, int batch_size,
                       const int* ws, MoveRange range);

template <typename T>
void laswp_rehearsal(gpusim::Device& dev, gpusim::Stream& stream, int j,
                     int jb, T* const* dA_array, const int* ldda,
                     const int* m_vec, const int* n_vec,
                     int const* const* ipiv_array, int batch_size,
                     int* ws) {
  laswp_rehearse_kernel<T>(dev, stream, j, jb, m_vec, n_vec, ipiv_array,
                           batch_size, ws);
  laswp_move_kernel<T>(dev, stream, j, jb, dA_array, ldda, m_vec, n_vec,
                       batch_size, ws, MoveRange::kBoth);
}

template <typename T>
void laswp_rehearse_kernel(gpusim::Device& dev, gpusim::Stream& stream,
                           int j, int jb, const int* m_vec, const int* n_vec,
                           int const* const* ipiv_array, int batch_size,
                           int* ws) {
  const int stride = 1 + 4 * jb;  // per-matrix workspace ints

  // Phase 1 — rehearse the swaps on auxiliary index columns: build the
  // compact set of touched rows and, for each, the original row that must
  // end up there once all swaps are applied.
  dev.launch(stream, {"irr_laswp_rehearse", batch_size, 0},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    int* w_cnt = ws + static_cast<std::ptrdiff_t>(id) * stride;
    int* list = w_cnt + 1;        // touched (destination) rows
    int* occ = list + 2 * jb;     // original row currently at list[t]
    *w_cnt = 0;
    const LaswpWork w = dcwi_laswp(j, jb, m_vec[id], n_vec[id]);
    if (w.none()) return;
    auto find_or_add = [&](int row) {
      for (int t = 0; t < *w_cnt; ++t)
        if (list[t] == row) return t;
      const int t = (*w_cnt)++;
      list[t] = row;
      occ[t] = row;
      return t;
    };
    for (int r = j; r < j + w.rows; ++r) {
      const int p = ipiv_array[id][r];
      const int tr = find_or_add(r);
      const int tp = find_or_add(p);
      std::swap(occ[tr], occ[tp]);
    }
    ctx.record(0.0, (2.0 * w.rows + 2.0 * *w_cnt) * sizeof(int));
  });
}

template <typename T>
void laswp_move_kernel(gpusim::Device& dev, gpusim::Stream& stream, int j,
                       int jb, T* const* dA_array, const int* ldda,
                       const int* m_vec, const int* n_vec, int batch_size,
                       const int* ws, MoveRange range) {
  const int stride = 1 + 4 * jb;
  // Phase 2 — move each touched row exactly once, through shared-memory
  // column chunks, over the selected width(s).
  const std::size_t move_smem =
      std::min(kMoveSmemBytes, dev.model().shared_mem_per_block);
  const gpusim::LaunchConfig cfg{"irr_laswp_move", batch_size, move_smem};
  dev.launch(stream, cfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int* w_cnt = ws + static_cast<std::ptrdiff_t>(id) * stride;
    const int cnt = *w_cnt;
    if (cnt == 0) return;
    const int* list = w_cnt + 1;
    const int* occ = list + 2 * jb;
    const LaswpWork w = dcwi_laswp(j, jb, m_vec[id], n_vec[id]);
    const int lda = ldda[id];
    T* A = dA_array[id];

    const int cw =
        std::max<int>(1, static_cast<int>(move_smem / sizeof(T)) / cnt);
    T* chunk = ctx.smem_alloc<T>(static_cast<std::size_t>(cnt) * cw);

    auto move_range = [&](int c0, int width) {
      for (int cc = 0; cc < width; cc += cw) {
        const int ec = std::min(cw, width - cc);
        for (int t = 0; t < cnt; ++t)
          for (int c = 0; c < ec; ++c)
            chunk[static_cast<std::ptrdiff_t>(c) * cnt + t] =
                A[static_cast<std::ptrdiff_t>(c0 + cc + c) * lda + occ[t]];
        for (int t = 0; t < cnt; ++t)
          for (int c = 0; c < ec; ++c)
            A[static_cast<std::ptrdiff_t>(c0 + cc + c) * lda + list[t]] =
                chunk[static_cast<std::ptrdiff_t>(c) * cnt + t];
      }
    };
    double width = 0;
    if (range != MoveRange::kRightOnly && w.wl > 0) {
      move_range(0, w.wl);
      width += w.wl;
    }
    if (range != MoveRange::kLeftOnly && w.wr > 0) {
      move_range(w.wr_off, w.wr);
      width += w.wr;
    }

    // Each touched element read once + written once; the chunked access
    // amortizes roughly half of the strided-row cache waste.
    ctx.record(0.0,
               2.0 * cnt * width * (row_penalty<T>() / 2.0) * sizeof(T));
  });
}

}  // namespace

template <typename T>
void irr_laswp(gpusim::Device& dev, gpusim::Stream& stream, int j, int jb,
               T* const* dA_array, const int* ldda, const int* m_vec,
               const int* n_vec, int const* const* ipiv_array, int batch_size,
               LaswpMethod method, int* workspace) {
  if (batch_size <= 0 || jb <= 0) return;
  if (method == LaswpMethod::kLooped) {
    laswp_looped(dev, stream, j, jb, dA_array, ldda, m_vec, n_vec,
                 ipiv_array, batch_size);
    return;
  }
  int* ws = workspace;
  if (ws == nullptr) {
    // Served from the device's workspace cache: allocation-free after the
    // first call on this stream, no lifetime sync needed (see header).
    ws = dev.workspace<int>("irrlaswp.s" + std::to_string(stream.id()),
                            irr_laswp_workspace_size(batch_size, jb));
  }
  laswp_rehearsal(dev, stream, j, jb, dA_array, ldda, m_vec, n_vec,
                  ipiv_array, batch_size, ws);
}

template <typename T>
void irr_laswp_dual(gpusim::Device& dev, gpusim::Stream& main,
                    gpusim::Stream& aux, int j, int jb, T* const* dA_array,
                    const int* ldda, const int* m_vec, const int* n_vec,
                    int const* const* ipiv_array, int batch_size,
                    int* workspace) {
  if (batch_size <= 0 || jb <= 0) return;
  int* ws = workspace;
  if (ws == nullptr) {
    // Keyed by the main stream: the aux stream only reads the rehearsal
    // output after the event fence below.
    ws = dev.workspace<int>("irrlaswp.s" + std::to_string(main.id()),
                            irr_laswp_workspace_size(batch_size, jb));
  }
  laswp_rehearse_kernel<T>(dev, main, j, jb, m_vec, n_vec, ipiv_array,
                           batch_size, ws);
  // The aux stream may move the right widths only after the rehearsal.
  const gpusim::Event rehearsed = dev.record(main);
  dev.wait(aux, rehearsed);
  laswp_move_kernel<T>(dev, main, j, jb, dA_array, ldda, m_vec, n_vec,
                       batch_size, ws, MoveRange::kLeftOnly);
  laswp_move_kernel<T>(dev, aux, j, jb, dA_array, ldda, m_vec, n_vec,
                       batch_size, ws, MoveRange::kRightOnly);
  // Re-join: subsequent work on the main stream sees both halves done.
  dev.wait(main, dev.record(aux));
}

template <typename T>
void irr_laswp_range_staged(gpusim::Device& dev, gpusim::Stream& stream,
                            int k0, int k1, int w, T* const* dA_array,
                            const int* ldda, int c0, const int* m_vec,
                            const int* n_vec, int const* const* ipiv_array,
                            int batch_size, int* workspace) {
  if (batch_size <= 0 || k1 <= k0 || w <= 0) return;
  const int jb = k1 - k0;
  const int stride = 1 + 4 * jb;  // per-matrix workspace ints
  int* ws = workspace;
  if (ws == nullptr) {
    ws = dev.workspace<int>("irrlaswp.range.s" + std::to_string(stream.id()),
                            irr_laswp_workspace_size(batch_size, jb));
  }

  // Phase 1 — rehearse the chain [k0, k1) on auxiliary index columns:
  // identical bookkeeping to laswp_rehearse_kernel, but over an explicit
  // pivot range rather than a DCWI-inferred panel.
  dev.launch(stream, {"irr_laswp_rehearse", batch_size, 0},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    int* w_cnt = ws + static_cast<std::ptrdiff_t>(id) * stride;
    int* list = w_cnt + 1;     // touched (destination) rows
    int* occ = list + 2 * jb;  // original row currently at list[t]
    *w_cnt = 0;
    const int rows = std::min(k1, m_vec[id]);
    if (rows <= k0 || n_vec[id] <= c0) return;
    auto find_or_add = [&](int row) {
      for (int t = 0; t < *w_cnt; ++t)
        if (list[t] == row) return t;
      const int t = (*w_cnt)++;
      list[t] = row;
      occ[t] = row;
      return t;
    };
    for (int r = k0; r < rows; ++r) {
      const int p = ipiv_array[id][r];
      const int tr = find_or_add(r);
      const int tp = find_or_add(p);
      std::swap(occ[tr], occ[tp]);
    }
    ctx.record(0.0, (2.0 * (rows - k0) + 2.0 * *w_cnt) * sizeof(int));
  });

  // Phase 2 — move each touched row exactly once over the [c0, c0+w)
  // column range, through shared-memory chunks (cf. laswp_move_kernel).
  const std::size_t move_smem =
      std::min(kMoveSmemBytes, dev.model().shared_mem_per_block);
  const gpusim::LaunchConfig cfg{"irr_laswp_move", batch_size, move_smem};
  dev.launch(stream, cfg, [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int* w_cnt = ws + static_cast<std::ptrdiff_t>(id) * stride;
    const int cnt = *w_cnt;
    const int width = std::min(w, n_vec[id] - c0);
    if (cnt == 0 || width <= 0) return;
    const int* list = w_cnt + 1;
    const int* occ = list + 2 * jb;
    const int lda = ldda[id];
    T* A = dA_array[id] + static_cast<std::ptrdiff_t>(c0) * lda;

    const int cw =
        std::max<int>(1, static_cast<int>(move_smem / sizeof(T)) / cnt);
    T* chunk = ctx.smem_alloc<T>(static_cast<std::size_t>(cnt) * cw);
    for (int cc = 0; cc < width; cc += cw) {
      const int ec = std::min(cw, width - cc);
      for (int t = 0; t < cnt; ++t)
        for (int c = 0; c < ec; ++c)
          chunk[static_cast<std::ptrdiff_t>(c) * cnt + t] =
              A[static_cast<std::ptrdiff_t>(cc + c) * lda + occ[t]];
      for (int t = 0; t < cnt; ++t)
        for (int c = 0; c < ec; ++c)
          A[static_cast<std::ptrdiff_t>(cc + c) * lda + list[t]] =
              chunk[static_cast<std::ptrdiff_t>(c) * cnt + t];
    }
    // Each touched element read once + written once; the chunked access
    // amortizes roughly half of the strided-row cache waste.
    ctx.record(0.0,
               2.0 * cnt * width * (row_penalty<T>() / 2.0) * sizeof(T));
  });
}

#define IRRLU_INSTANTIATE_LASWP(T)                                          \
  template void irr_laswp<T>(gpusim::Device&, gpusim::Stream&, int, int,    \
                             T* const*, const int*, const int*, const int*, \
                             int const* const*, int, LaswpMethod, int*);    \
  template void irr_laswp_dual<T>(gpusim::Device&, gpusim::Stream&,         \
                                  gpusim::Stream&, int, int, T* const*,     \
                                  const int*, const int*, const int*,       \
                                  int const* const*, int, int*);            \
  template void irr_laswp_range_staged<T>(                                  \
      gpusim::Device&, gpusim::Stream&, int, int, int, T* const*,           \
      const int*, int, const int*, const int*, int const* const*, int,      \
      int*);

IRRLU_INSTANTIATE_LASWP(float)
IRRLU_INSTANTIATE_LASWP(double)
IRRLU_INSTANTIATE_LASWP(std::complex<double>)

#undef IRRLU_INSTANTIATE_LASWP

}  // namespace irrlu::batch
