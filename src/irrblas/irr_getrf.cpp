// irrLU-GPU (paper §IV): the blocked LU driver over a non-uniform batch.
//
// The host loop is written against the largest workload in the batch —
// max_id min(m_vec[id], n_vec[id]) columns — and is pure kernel enqueueing:
// the offsets in the expanded interface advance with the panel index, the
// local dimension vectors never change, and DCWI inside every kernel
// retires matrices (fully or partially) on the fly. No pointer or integer
// arithmetic kernels run between the computational steps.
#include <algorithm>
#include <complex>

#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "lapack/blas.hpp"
#include "trace/trace.hpp"

namespace irrlu::batch {

namespace {

/// One-time setup kernel: k_vec[id] = min(m_vec[id], n_vec[id]). Launched
/// once per factorization (not per step), keeping the driver asynchronous.
void setup_kmin(gpusim::Device& dev, gpusim::Stream& stream,
                const int* m_vec, const int* n_vec, int* k_vec,
                int batch_size) {
  dev.launch(stream, {"irr_lu_setup", batch_size > 0 ? 1 : 0, 0},
             [=](gpusim::BlockCtx& ctx) {
    for (int i = 0; i < batch_size; ++i)
      k_vec[i] = std::min(m_vec[i], n_vec[i]);
    ctx.record(0.0, 3.0 * batch_size * sizeof(int));
  });
}

}  // namespace

template <typename T>
void irr_getrf(gpusim::Device& dev, gpusim::Stream& stream, int m, int n,
               T* const* dA_array, const int* ldda, int Ai, int Aj,
               const int* m_vec, const int* n_vec, int* const* ipiv_array,
               int* info_array, int batch_size, const IrrLuOptions& opts) {
  if (batch_size <= 0) return;
  const int kmax = std::min(m, n);
  if (kmax <= 0) return;
  const int nb = std::max(1, opts.nb);

  // Per-factorization device workspaces: caller-provided, or served from
  // the device's reusable workspace cache (keyed by stream, so concurrent
  // streams never share scratch). The cached buffers live as long as the
  // device, so the driver is fully asynchronous either way — only the
  // first call on a stream (or a batch larger than any before) pays an
  // allocation; repeated per-group calls stop allocating at all.
  int* kmin_ws = opts.kmin_workspace;
  int* laswp_ws = opts.laswp_workspace;
  if (kmin_ws == nullptr)
    kmin_ws = dev.workspace<int>("irrlu.kmin.s" + std::to_string(stream.id()),
                                 static_cast<std::size_t>(batch_size));
  if (laswp_ws == nullptr)
    laswp_ws =
        dev.workspace<int>("irrlu.laswp.s" + std::to_string(stream.id()),
                           irr_laswp_workspace_size(batch_size, nb));
  setup_kmin(dev, stream, m_vec, n_vec, kmin_ws, batch_size);

  for (int j = 0; j < kmax; j += nb) {
    const int jb = std::min(nb, kmax - j);

    // --- panel decomposition (§IV-E) -------------------------------------
    // Rough shared-memory estimate with the fixed-width assumption: the
    // tallest remaining panel is (m - j) rows by jb columns.
    {
      IRRLU_TRACE_SCOPE(dev.tracer(), "panel");
      const bool fused = !opts.force_columnwise_panel &&
                         irr_getf2_smem_bytes<T>(m - j, jb) <=
                             dev.model().shared_mem_per_block;
      if (fused) {
        irr_getf2_fused(dev, stream, m - j, jb, dA_array, ldda, Ai + j,
                        Aj + j, m_vec, n_vec, ipiv_array, info_array,
                        batch_size, opts.boost);
      } else {
        irr_panel_columnwise(dev, stream, m - j, jb, dA_array, ldda, Ai + j,
                             Aj + j, m_vec, n_vec, ipiv_array, info_array,
                             batch_size, opts.boost);
      }
    }

    // --- row interchanges outside the panel (§IV-F) ----------------------
    {
      IRRLU_TRACE_SCOPE(dev.tracer(), "swap");
      if (opts.laswp_aux_stream != nullptr &&
          opts.laswp == LaswpMethod::kRehearsal) {
        irr_laswp_dual(dev, stream, *opts.laswp_aux_stream, j, jb, dA_array,
                       ldda, m_vec, n_vec,
                       const_cast<int const* const*>(ipiv_array), batch_size,
                       laswp_ws);
      } else {
        irr_laswp(dev, stream, j, jb, dA_array, ldda, m_vec, n_vec,
                  const_cast<int const* const*>(ipiv_array), batch_size,
                  opts.laswp, laswp_ws);
      }
    }

    // --- triangular solve for the U block row ----------------------------
    if (j + jb < n) {
      {
        // Recursive irr_trsm launches internal irr_gemm kernels; scope
        // attribution charges them to the trsm phase (kernel-name
        // attribution still classes them as GEMM).
        IRRLU_TRACE_SCOPE(dev.tracer(), "trsm");
        irr_trsm(dev, stream, la::Side::Left, la::Uplo::Lower, la::Trans::No,
                 la::Diag::Unit, jb, n - j - jb, T(1),
                 const_cast<T const* const*>(dA_array), ldda, Ai + j, Aj + j,
                 dA_array, ldda, Ai + j, Aj + j + jb, kmin_ws, n_vec,
                 batch_size);
      }

      // --- trailing update (irrGEMM, §IV-C) -------------------------------
      if (j + jb < m) {
        IRRLU_TRACE_SCOPE(dev.tracer(), "update");
        irr_gemm(dev, stream, la::Trans::No, la::Trans::No, m - j - jb,
                 n - j - jb, jb, T(-1),
                 const_cast<T const* const*>(dA_array), ldda, Ai + j + jb,
                 Aj + j,
                 const_cast<T const* const*>(dA_array), ldda, Ai + j,
                 Aj + j + jb, T(1), dA_array, ldda, Ai + j + jb, Aj + j + jb,
                 m_vec, n_vec, kmin_ws, batch_size);
      }
    }
  }
}

template <typename T>
void irr_laswp_range(gpusim::Device& dev, gpusim::Stream& stream, int k0,
                     int k1, int w, T* const* dA_array, const int* ldda,
                     int c0, const int* m_vec, const int* n_vec,
                     int const* const* ipiv_array, int batch_size) {
  if (batch_size <= 0 || k1 <= k0 || w <= 0) return;
  dev.launch(stream, {"irr_laswp_range", batch_size, 0},
             [=](gpusim::BlockCtx& ctx) {
    const int id = ctx.block();
    const int rows = std::min(k1, m_vec[id]);  // pivots available locally
    const int width = std::min(w, n_vec[id] - c0);
    if (rows <= k0 || width <= 0) return;
    const int lda = ldda[id];
    T* A = dA_array[id] + static_cast<std::ptrdiff_t>(c0) * lda;
    double swaps = 0;
    for (int r = k0; r < rows; ++r) {
      const int p = ipiv_array[id][r];
      if (p != r) {
        la::swap(width, A + r, lda, A + p, lda);
        swaps += 1;
      }
    }
    ctx.record(0.0, swaps * 4.0 * width * (64.0 / sizeof(T)) * sizeof(T));
  });
}

#define IRRLU_INSTANTIATE_GETRF(T)                                         \
  template void irr_getrf<T>(gpusim::Device&, gpusim::Stream&, int, int,   \
                             T* const*, const int*, int, int, const int*,  \
                             const int*, int* const*, int*, int,           \
                             const IrrLuOptions&);                         \
  template void irr_laswp_range<T>(gpusim::Device&, gpusim::Stream&, int,  \
                                   int, int, T* const*, const int*, int,   \
                                   const int*, const int*,                 \
                                   int const* const*, int);

IRRLU_INSTANTIATE_GETRF(float)
IRRLU_INSTANTIATE_GETRF(double)
IRRLU_INSTANTIATE_GETRF(std::complex<double>)

#undef IRRLU_INSTANTIATE_GETRF

}  // namespace irrlu::batch
