// Size-dispatched kernel cache for the interleaved (SoA) batch layout
// (libxsmm idiom): the caller describes an operation by its shape key
// (op, m, n, k, layout, precision), the cache returns a resolved,
// size-specialized kernel handle — built once per key, reused for the
// process lifetime of the cache. DESIGN.md §12.
//
// Two lookup tiers:
//  - KernelCache::resolve(key): hash lookup, building the kernel on a
//    miss (hit/miss counters feed the tracer's dispatch.* counters).
//  - DispatchPlan: a recorded sequence of resolutions. A factorization
//    of a given sparsity pattern resolves the same keys in the same
//    order every time, so the plan replays them as a cursor walk with a
//    single equality check per call — no hashing. The PR 7 service layer
//    keys its sessions by pattern hash and each session's solver owns
//    one plan, which is what makes repeated same-pattern refactors skip
//    dispatch entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "lapack/microkernel_ilv.hpp"

namespace irrlu::batch {

/// Policy knobs for routing multifrontal leaf/small size classes through
/// the interleaved layout (consumed by the kBatched engine; see
/// DESIGN.md §12). Off by default: the strided path stays the reference
/// and the default simulated output is byte-identical with PR <= 7.
struct InterleavedOptions {
  bool enabled = false;
  /// Largest separator (s) and update (u) extent routed. The default is
  /// the measured crossover against the strided engine: the SoA
  /// microkernels win >= 2.6x at dims <= 12 on the host
  /// (BENCH_blas.json interleaved_* rows) and stay ahead in simulated
  /// device time through 16 once the level-wide descriptor group
  /// amortizes the allocations, while fronts in the 20-32 range cost
  /// more than they save on both clocks (BENCH_factor.json). Raising it
  /// is always *correct* — the engine additionally clamps to 32, above
  /// which the strided path switches to blocked/recursive algorithms
  /// whose operation order the interleaved kernels do not mirror, so the
  /// bitwise-identity contract would break.
  int max_class_dim = 16;
};

enum class MicroOp : std::uint8_t { kGemm, kTrsmLeft, kTrsmRight, kGetf2 };
enum class BatchLayout : std::uint8_t { kStrided, kInterleaved };
enum class MicroPrec : std::uint8_t { kF64, kF32 };

/// MicroPrec of a C++ element type (the typed launch wrappers key their
/// resolutions with this, so double callers keep the pre-existing keys).
template <typename T>
inline constexpr MicroPrec kMicroPrecOf = MicroPrec::kF64;
template <>
inline constexpr MicroPrec kMicroPrecOf<float> = MicroPrec::kF32;

/// Dispatch key: everything that selects a kernel body. `flags` carries
/// the trsm variant (bit 0: effective-lower triangle, bit 1: unit
/// diagonal) and is 0 for gemm/getf2.
struct KernelKey {
  MicroOp op = MicroOp::kGemm;
  int m = 0, n = 0, k = 0;
  BatchLayout layout = BatchLayout::kInterleaved;
  MicroPrec prec = MicroPrec::kF64;
  std::uint32_t flags = 0;

  friend bool operator==(const KernelKey&, const KernelKey&) = default;
};

inline KernelKey gemm_key(int m, int n, int k,
                          MicroPrec prec = MicroPrec::kF64) {
  KernelKey key;
  key.op = MicroOp::kGemm;
  key.m = m;
  key.n = n;
  key.k = k;
  key.prec = prec;
  return key;
}

inline KernelKey trsm_key(bool left, bool lower, bool unit, int m, int n,
                          MicroPrec prec = MicroPrec::kF64) {
  KernelKey key;
  key.op = left ? MicroOp::kTrsmLeft : MicroOp::kTrsmRight;
  key.m = m;
  key.n = n;
  key.flags = (lower ? 1u : 0u) | (unit ? 2u : 0u);
  key.prec = prec;
  return key;
}

inline KernelKey getf2_key(int m, int n,
                          MicroPrec prec = MicroPrec::kF64) {
  KernelKey key;
  key.op = MicroOp::kGetf2;
  key.m = m;
  key.n = n;
  key.prec = prec;
  return key;
}

struct KernelKeyHash {
  std::size_t operator()(const KernelKey& key) const {
    // FNV-1a over the key fields (same idiom as CsrMatrix::pattern_hash).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(key.op));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.m)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.n)));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.k)));
    mix(static_cast<std::uint64_t>(key.layout));
    mix(static_cast<std::uint64_t>(key.prec));
    mix(key.flags);
    return static_cast<std::size_t>(h);
  }
};

/// Kernel registry keyed by KernelKey. Returned pointers are stable for
/// the cache's lifetime (kernels are held by unique_ptr), so plans and
/// launch descriptors may retain them.
class KernelCache {
 public:
  struct Stats {
    long hits = 0;       ///< hash lookups that found a built kernel
    long misses = 0;     ///< lookups that had to build one
    long plan_hits = 0;  ///< resolutions served by a DispatchPlan replay
  };

  /// Returns the kernel for `key`, building it on first use.
  const la::mk::ilv::Kernel* resolve(const KernelKey& key);

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return map_.size(); }

 private:
  friend class DispatchPlan;
  std::unordered_map<KernelKey, std::unique_ptr<la::mk::ilv::Kernel>,
                     KernelKeyHash>
      map_;
  Stats stats_;
};

/// A recorded resolution sequence. First factorization of a pattern
/// records (each resolve goes through the cache and is appended); a
/// refactorization calls begin_replay() and then serves each resolve
/// from the cursor with one key comparison. A mismatch (the caller's
/// resolution sequence changed, e.g. different options) truncates the
/// recorded tail at the cursor and falls back to recording mode from
/// that point — the plan never returns a kernel for the wrong key.
class DispatchPlan {
 public:
  const la::mk::ilv::Kernel* resolve(KernelCache& cache,
                                     const KernelKey& key) {
    if (cursor_ < entries_.size()) {
      if (entries_[cursor_].key == key) {
        ++cache.stats_.plan_hits;
        return entries_[cursor_++].kern;
      }
      entries_.resize(cursor_);
    }
    const la::mk::ilv::Kernel* kern = cache.resolve(key);
    entries_.push_back({key, kern});
    cursor_ = entries_.size();
    return kern;
  }

  void begin_replay() { cursor_ = 0; }
  std::size_t size() const { return entries_.size(); }
  void clear() {
    entries_.clear();
    cursor_ = 0;
  }

 private:
  struct Entry {
    KernelKey key;
    const la::mk::ilv::Kernel* kern;
  };
  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
};

/// The resolution handle kernels are looked up through: a cache plus an
/// optional plan. Copyable view — owns nothing.
struct Dispatch {
  KernelCache* cache = nullptr;
  DispatchPlan* plan = nullptr;

  const la::mk::ilv::Kernel* resolve(const KernelKey& key) const {
    return plan != nullptr ? plan->resolve(*cache, key)
                           : cache->resolve(key);
  }
};

}  // namespace irrlu::batch
