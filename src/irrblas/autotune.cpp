#include "irrblas/autotune.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"

namespace irrlu::batch {

AutotuneResult autotune_panel_width(const gpusim::DeviceModel& model,
                                    const std::vector<int>& sizes,
                                    int sample, std::vector<int> candidates) {
  AutotuneResult out;
  out.candidates = candidates;
  IRRLU_CHECK(!sizes.empty() && !candidates.empty());

  // Sample the size distribution (with replacement, deterministic seed so
  // every candidate sees the same workload). The draw is with replacement,
  // so the requested count stands even when it exceeds the number of
  // distinct sizes — capping it there under-sampled small distributions
  // and biased the tuned width toward whatever few sizes survived.
  Rng rng(0xa1b2c3);
  const int count = sample;
  IRRLU_CHECK(count > 0);
  out.sampled = count;
  std::vector<int> sampled(static_cast<std::size_t>(count));
  for (auto& v : sampled)
    v = sizes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(sizes.size()) - 1))];
  const int nmax = *std::max_element(sampled.begin(), sampled.end());

  double best = 0;
  for (int nb : candidates) {
    // Fresh scratch device per candidate: clean timeline, same model.
    gpusim::Device dev(model);
    VBatch<double> a(dev, sampled);
    Rng fill(7);
    a.fill_uniform(fill);
    PivotBatch piv(dev, sampled, sampled);
    IrrLuOptions opts;
    opts.nb = nb;
    dev.reset_timeline();
    irr_getrf<double>(dev, dev.stream(), nmax, nmax, a.ptrs(), a.lda(), 0,
                      0, a.m_vec(), a.n_vec(), piv.ptrs(), piv.info(), count,
                      opts);
    const double t = dev.synchronize_all();
    out.seconds.push_back(t);
    if (out.seconds.size() == 1 || t < best) {
      best = t;
      out.nb = nb;
    }
  }
  return out;
}

}  // namespace irrlu::batch
